//! The discrete-event packet simulator.

use pamr_mesh::LinkId;
use pamr_power::PowerModel;
use pamr_routing::{CommSet, Routing};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Injection horizon in microseconds: packets are injected in
    /// `[0, horizon_us)`, then the network drains.
    pub horizon_us: f64,
    /// Packet size in bits (all flows use the same packet size).
    pub packet_bits: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            horizon_us: 100.0,
            packet_bits: 512.0,
        }
    }
}

/// Per-flow delivery statistics. A "flow" is one `(communication, path)`
/// pair of the routing; `comm` maps it back to its communication.
#[derive(Debug, Clone, Copy)]
pub struct FlowStats {
    /// Index of the communication this flow belongs to.
    pub comm: usize,
    /// Rate carried by this flow (same unit as the weights, Mb/s).
    pub rate: f64,
    /// Packets injected (= delivered; the network is drained).
    pub delivered: usize,
    /// Mean end-to-end packet latency in µs.
    pub mean_latency_us: f64,
    /// Worst packet latency in µs.
    pub max_latency_us: f64,
}

/// Simulation outcome.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-flow statistics, in routing order (communication by
    /// communication, path by path).
    pub flows: Vec<FlowStats>,
    /// Per-link busy-time / horizon (can exceed 1.0 on clamped links).
    pub utilization: Vec<(LinkId, f64)>,
    /// Largest link backlog at the end of injection, in µs of service.
    pub max_backlog_us: f64,
    /// Total link energy over the horizon, in nanojoules: Σ active links
    /// `P(link) × horizon`.
    pub energy_nj: f64,
    /// True iff some link's demanded load exceeded its top frequency level
    /// (the flow-level model calls such a routing *infeasible*).
    pub clamped: bool,
    /// All delivered-packet latencies, sorted ascending (for percentiles).
    pub latencies: Vec<f64>,
}

impl SimReport {
    /// Mean latency over all delivered packets, in µs.
    pub fn mean_latency_us(&self) -> f64 {
        let (mut n, mut sum) = (0usize, 0.0);
        for f in &self.flows {
            n += f.delivered;
            sum += f.mean_latency_us * f.delivered as f64;
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// A routing *sustains* its rates when no link was clamped and no
    /// backlog longer than `tol_us` remains after the injection horizon.
    pub fn sustains(&self, tol_us: f64) -> bool {
        !self.clamped && self.max_backlog_us <= tol_us
    }

    /// Latency percentile in `[0, 1]` (e.g. `0.99` for p99), or 0 when
    /// nothing was delivered.
    pub fn latency_percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.latencies.is_empty() {
            return 0.0;
        }
        let idx = ((self.latencies.len() - 1) as f64 * q).round() as usize;
        self.latencies[idx]
    }
}

#[derive(Debug, Clone, Copy)]
struct Packet {
    flow: usize,
    injected_us: f64,
}

/// Heap event: packet `pkt` becomes ready to start service at hop `hop` of
/// its path at time `time`.
#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    pkt: usize,
    hop: usize,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Runs the routing on the packet simulator. See the crate docs for the
/// model; deterministic for a given input.
///
/// # Panics
/// Panics if the routing is not structurally valid for `cs`.
pub fn simulate(cs: &CommSet, routing: &Routing, model: &PowerModel, cfg: &SimConfig) -> SimReport {
    assert!(
        routing.is_structurally_valid(cs, usize::MAX),
        "routing does not cover the communication set"
    );
    let mesh = cs.mesh();
    // Flatten the routing into flows.
    struct Flow {
        comm: usize,
        rate: f64,
        links: Vec<LinkId>,
    }
    let mut flows: Vec<Flow> = Vec::new();
    for i in 0..cs.len() {
        for (path, rate) in routing.flows(i) {
            flows.push(Flow {
                comm: i,
                rate: *rate,
                links: path.links(mesh).collect(),
            });
        }
    }
    // Aggregate load per link decides the DVFS level (service rate).
    let loads = routing.loads(cs);
    let mut service = vec![0.0f64; mesh.num_link_slots()]; // bits per µs
    let mut clamped = false;
    let mut energy_nj = 0.0;
    for (l, load) in loads.iter_active() {
        let eff = match model.effective_bandwidth(load) {
            Some(b) => b,
            None => {
                clamped = true;
                // Run at the top level anyway: queues will grow.
                model.max_bandwidth()
            }
        };
        service[l.index()] = eff;
        // Energy at the level actually run (clamped links burn top power).
        energy_nj +=
            (model.p_leak + model.p0 * (eff * model.load_unit).powf(model.alpha)) * cfg.horizon_us;
    }

    // Inject CBR packets per flow with a deterministic per-flow phase.
    let mut packets: Vec<Packet> = Vec::new();
    let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut seq = 0u64;
    for (fi, f) in flows.iter().enumerate() {
        if f.rate <= 0.0 {
            continue;
        }
        let interval = cfg.packet_bits / f.rate; // µs between packets
        let phase = interval * (fi as f64 * 0.618_033_988_75).fract();
        let mut t = phase;
        while t < cfg.horizon_us {
            let pkt = packets.len();
            packets.push(Packet {
                flow: fi,
                injected_us: t,
            });
            heap.push(Reverse(Event {
                time: t,
                seq,
                pkt,
                hop: 0,
            }));
            seq += 1;
            t += interval;
        }
    }

    // FIFO single-server links: next free time per link.
    let mut link_free = vec![0.0f64; mesh.num_link_slots()];
    let mut busy = vec![0.0f64; mesh.num_link_slots()];
    let mut stats: Vec<(usize, f64, f64)> = vec![(0, 0.0, 0.0); flows.len()]; // (count, sum, max)
    let mut latencies: Vec<f64> = Vec::with_capacity(packets.len());
    while let Some(Reverse(ev)) = heap.pop() {
        let flow = &flows[packets[ev.pkt].flow];
        if ev.hop == flow.links.len() {
            // Delivered.
            let lat = ev.time - packets[ev.pkt].injected_us;
            latencies.push(lat);
            let s = &mut stats[packets[ev.pkt].flow];
            s.0 += 1;
            s.1 += lat;
            s.2 = s.2.max(lat);
            continue;
        }
        let l = flow.links[ev.hop].index();
        let start = ev.time.max(link_free[l]);
        let dt = cfg.packet_bits / service[l];
        link_free[l] = start + dt;
        busy[l] += dt;
        heap.push(Reverse(Event {
            time: start + dt,
            seq: ev.seq, // keep FIFO order stable per packet
            pkt: ev.pkt,
            hop: ev.hop + 1,
        }));
    }

    let utilization: Vec<(LinkId, f64)> = mesh
        .links()
        .filter(|l| busy[l.index()] > 0.0)
        .map(|l| (l, busy[l.index()] / cfg.horizon_us))
        .collect();
    let max_backlog_us = mesh
        .links()
        .map(|l| (link_free[l.index()] - cfg.horizon_us).max(0.0))
        .fold(0.0, f64::max);
    let flow_stats = flows
        .iter()
        .enumerate()
        .map(|(fi, f)| {
            let (n, sum, max) = stats[fi];
            FlowStats {
                comm: f.comm,
                rate: f.rate,
                delivered: n,
                mean_latency_us: if n == 0 { 0.0 } else { sum / n as f64 },
                max_latency_us: max,
            }
        })
        .collect();
    latencies.sort_by(f64::total_cmp);
    SimReport {
        flows: flow_stats,
        utilization,
        max_backlog_us,
        energy_nj,
        clamped,
        latencies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pamr_mesh::{Coord, Mesh};
    use pamr_routing::{xy_routing, Comm, Heuristic, PathRemover};

    fn single_flow_instance(rate: f64) -> CommSet {
        CommSet::new(
            Mesh::new(2, 3),
            vec![Comm::new(Coord::new(0, 0), Coord::new(1, 2), rate)],
        )
    }

    #[test]
    fn single_flow_latency_is_sum_of_hop_times() {
        // 1000 Mb/s load on an uncongested path: each link runs at the
        // 1000 Mb/s level → 512 bits take 0.512 µs per hop, 3 hops.
        let cs = single_flow_instance(1000.0);
        let model = PowerModel::kim_horowitz();
        let r = xy_routing(&cs);
        let rep = simulate(&cs, &r, &model, &SimConfig::default());
        assert!(!rep.clamped);
        let f = &rep.flows[0];
        assert!(f.delivered > 0);
        // CBR at exactly the service rate: no queueing, latency = 3 hops.
        let expected = 3.0 * 512.0 / 1000.0;
        assert!(
            (f.mean_latency_us - expected).abs() < 1e-6,
            "mean {} vs {expected}",
            f.mean_latency_us
        );
        // At exactly 100% utilisation the final in-flight packets drain just
        // past the horizon; a couple of packet times is not divergence.
        assert!(rep.sustains(2.0), "backlog {}", rep.max_backlog_us);
    }

    #[test]
    fn all_injected_packets_are_delivered() {
        let cs = single_flow_instance(900.0);
        let model = PowerModel::kim_horowitz();
        let r = xy_routing(&cs);
        let cfg = SimConfig {
            horizon_us: 50.0,
            packet_bits: 256.0,
        };
        let rep = simulate(&cs, &r, &model, &cfg);
        // 900 Mb/s × 50 µs / 256 bits ≈ 175 packets.
        let expected = (900.0 * 50.0 / 256.0) as usize;
        assert!(rep.flows[0].delivered.abs_diff(expected) <= 1);
    }

    #[test]
    fn overloaded_link_is_clamped_and_backlogs() {
        // 5000 Mb/s > 3500 top level: the simulator clamps and the queue
        // grows roughly (5000−3500)/3500 of the horizon.
        let cs = single_flow_instance(5000.0);
        let model = PowerModel::kim_horowitz();
        let r = xy_routing(&cs);
        let rep = simulate(&cs, &r, &model, &SimConfig::default());
        assert!(rep.clamped);
        assert!(!rep.sustains(1.0));
        assert!(rep.max_backlog_us > 10.0, "backlog {}", rep.max_backlog_us);
    }

    #[test]
    fn contention_queues_but_sustains_within_capacity() {
        // Two 1700 Mb/s flows forced onto one 3500 Mb/s link by XY.
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 1700.0),
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 1700.0),
            ],
        );
        let model = PowerModel::kim_horowitz();
        let rep = simulate(&cs, &xy_routing(&cs), &model, &SimConfig::default());
        assert!(!rep.clamped);
        // Shared-link utilisation ≈ 3400/3500.
        let max_util = rep.utilization.iter().map(|&(_, u)| u).fold(0.0, f64::max);
        assert!((max_util - 3400.0 / 3500.0).abs() < 0.05, "util {max_util}");
        assert!(rep.sustains(2.0), "backlog {}", rep.max_backlog_us);
    }

    #[test]
    fn manhattan_routing_beats_xy_on_contention() {
        // Two heavy flows: XY stacks them (clamped); PR separates them.
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 2500.0),
                Comm::new(Coord::new(0, 0), Coord::new(1, 1), 2500.0),
            ],
        );
        let model = PowerModel::kim_horowitz();
        let xy_rep = simulate(&cs, &xy_routing(&cs), &model, &SimConfig::default());
        assert!(xy_rep.clamped);
        let pr = PathRemover.route(&cs, &model);
        let pr_rep = simulate(&cs, &pr, &model, &SimConfig::default());
        assert!(!pr_rep.clamped);
        assert!(pr_rep.sustains(2.0));
        assert!(pr_rep.mean_latency_us() < xy_rep.mean_latency_us());
    }

    #[test]
    fn multipath_flows_split_packets() {
        use pamr_mesh::Path;
        use pamr_routing::Routing;
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![Comm::new(Coord::new(0, 0), Coord::new(1, 1), 2000.0)],
        );
        let src = Coord::new(0, 0);
        let snk = Coord::new(1, 1);
        let r = Routing::multi(vec![vec![
            (Path::xy(src, snk), 1000.0),
            (Path::yx(src, snk), 1000.0),
        ]]);
        let model = PowerModel::kim_horowitz();
        let rep = simulate(&cs, &r, &model, &SimConfig::default());
        assert_eq!(rep.flows.len(), 2);
        assert!(rep.flows.iter().all(|f| f.delivered > 0));
        assert!(rep.sustains(1.0));
    }

    #[test]
    fn energy_scales_with_active_links() {
        let model = PowerModel::kim_horowitz();
        let cs = single_flow_instance(800.0);
        let rep = simulate(&cs, &xy_routing(&cs), &model, &SimConfig::default());
        // 3 links at the 1 Gb/s level for 100 µs: 3 × 22.31 mW × 100 µs.
        let expected = 3.0 * (16.9 + 5.41) * 100.0;
        assert!((rep.energy_nj - expected).abs() < 1e-6, "{}", rep.energy_nj);
    }

    #[test]
    fn local_comms_are_free() {
        let mesh = Mesh::new(2, 2);
        let cs = CommSet::new(
            mesh,
            vec![Comm::new(Coord::new(0, 0), Coord::new(0, 0), 1000.0)],
        );
        let model = PowerModel::kim_horowitz();
        let rep = simulate(&cs, &xy_routing(&cs), &model, &SimConfig::default());
        assert_eq!(rep.energy_nj, 0.0);
        assert!(rep.sustains(0.0));
        // Packets "arrive" instantly.
        assert!(rep.flows[0].max_latency_us == 0.0);
    }
}
