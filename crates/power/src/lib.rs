//! # pamr-power — link power & frequency-scaling models
//!
//! Implements the power-consumption model of Section 3.1 of *Power-aware
//! Manhattan routing on chip multiprocessors* (INRIA RR-7752):
//!
//! An **active** link (non-zero bandwidth fraction `f`) dissipates
//!
//! ```text
//! P = P_leak + P_0 · (f · BW)^α ,        2 < α ≤ 3
//! ```
//!
//! while an inactive link dissipates nothing. The effective bandwidth
//! `f · BW` must cover the traffic routed through the link; with
//! **continuous** frequency scaling it equals the load exactly, with
//! **discrete** levels it is the smallest available level at or above the
//! load (Section 6: "we pick the first frequency in the set of possible
//! frequencies higher than the required continuous frequency").
//!
//! [`PowerModel::kim_horowitz`] is the paper's simulation model, fitted to
//! the adaptive-supply serial links of Kim & Horowitz (ISSCC'02; the paper's reference 7):
//! `P_leak = 16.9 mW`, `P_0 = 5.41`, `α = 2.95`, frequencies
//! {1, 2.5, 3.5} Gb/s, with communication weights expressed in Mb/s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
pub mod model;

pub use model::{FrequencyScale, Infeasible, PowerBreakdown, PowerModel};
