//! The power model: static + dynamic link power under frequency scaling.

use pamr_mesh::{LoadMap, Mesh};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Relative slack tolerated on capacity checks, to absorb floating-point
/// accumulation when many fractional flows sum to exactly the capacity.
pub const CAPACITY_EPS: f64 = 1e-6;

/// How link frequency (effective bandwidth) can be chosen.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FrequencyScale {
    /// `f · BW` can match the load exactly (the paper's theoretical model).
    Continuous,
    /// Only the given effective-bandwidth levels exist (sorted ascending,
    /// same unit as the loads). The smallest level ≥ load is selected.
    Discrete(Vec<f64>),
}

impl FrequencyScale {
    /// Effective bandwidth needed to carry `load`, or `None` if no level can.
    ///
    /// `capacity` is the largest admissible load (`BW`); the continuous
    /// model refuses loads above it, the discrete model refuses loads above
    /// its top level.
    pub fn effective_bandwidth(&self, load: f64, capacity: f64) -> Option<f64> {
        debug_assert!(load >= 0.0);
        if load == 0.0 {
            return Some(0.0);
        }
        let slack = capacity * CAPACITY_EPS;
        match self {
            FrequencyScale::Continuous => (load <= capacity + slack).then_some(load.min(capacity)),
            FrequencyScale::Discrete(levels) => {
                levels.iter().copied().find(|&lv| load <= lv + slack)
            }
        }
    }
}

/// Error returned when a link load exceeds every available frequency level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Infeasible;

impl fmt::Display for Infeasible {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link load exceeds the maximum link bandwidth")
    }
}

impl std::error::Error for Infeasible {}

/// Static/dynamic decomposition of a routing's total power.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Total leakage power: `P_leak ×` number of active links.
    pub leakage: f64,
    /// Total dynamic power: `Σ P_0 · (f·BW)^α` over active links.
    pub dynamic: f64,
    /// Number of links carrying traffic.
    pub active_links: usize,
}

impl PowerBreakdown {
    /// Total power, leakage + dynamic.
    #[inline]
    pub fn total(&self) -> f64 {
        self.leakage + self.dynamic
    }

    /// Fraction of total power that is static (§6.4 reports ≈ 1/7 for the
    /// paper's campaign). Zero when no link is active.
    pub fn static_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.leakage / t
        }
    }
}

/// The paper's link power model (Section 3.1).
///
/// `P(link) = P_leak + P_0 · b^α` for an active link whose chosen effective
/// bandwidth is `b` (expressed in power units: `b = load · load_unit`), and
/// `P = 0` for an inactive link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Leakage (static) power of an active link.
    pub p_leak: f64,
    /// Dynamic power coefficient `P_0`.
    pub p0: f64,
    /// Dynamic power exponent `α ∈ (2, 3]`.
    pub alpha: f64,
    /// Maximum link bandwidth `BW`, in load units.
    pub capacity: f64,
    /// Frequency scaling mode.
    pub scale: FrequencyScale,
    /// Conversion from load units to the unit the power fit expects
    /// (the Kim–Horowitz model is fitted in Gb/s but the campaign's weights
    /// are Mb/s, so `load_unit = 1e-3` there; `1.0` for abstract units).
    pub load_unit: f64,
}

impl PowerModel {
    /// Continuous-frequency model in abstract units.
    pub fn continuous(p_leak: f64, p0: f64, alpha: f64, capacity: f64) -> Self {
        assert!(
            alpha > 1.0,
            "the model needs a strictly convex dynamic term"
        );
        PowerModel {
            p_leak,
            p0,
            alpha,
            capacity,
            scale: FrequencyScale::Continuous,
            load_unit: 1.0,
        }
    }

    /// The theoretical-analysis model of Section 4: `P_leak = 0`, `P_0 = 1`,
    /// unbounded capacity (pure load-balancing objective).
    pub fn theory(alpha: f64) -> Self {
        PowerModel::continuous(0.0, 1.0, alpha, f64::INFINITY)
    }

    /// The Figure 2 toy model: `P_leak = 0`, `P_0 = 1`, `α = 3`, `BW = 4`.
    pub fn fig2() -> Self {
        PowerModel::continuous(0.0, 1.0, 3.0, 4.0)
    }

    /// The simulation model of Section 6, fitted to Kim & Horowitz (the paper's reference 7):
    /// `P_leak = 16.9 mW`, `P_0 = 5.41`, `α = 2.95`, discrete link
    /// frequencies {1, 2.5, 3.5} Gb/s. Loads are in **Mb/s** (the unit used
    /// for all communication weights in the campaign), powers in mW.
    pub fn kim_horowitz() -> Self {
        PowerModel {
            p_leak: 16.9,
            p0: 5.41,
            alpha: 2.95,
            capacity: 3500.0,
            scale: FrequencyScale::Discrete(vec![1000.0, 2500.0, 3500.0]),
            load_unit: 1e-3,
        }
    }

    /// Continuous variant of [`PowerModel::kim_horowitz`] (same constants,
    /// exact frequency matching) — used by ablation benches.
    pub fn kim_horowitz_continuous() -> Self {
        PowerModel {
            scale: FrequencyScale::Continuous,
            ..PowerModel::kim_horowitz()
        }
    }

    /// True iff a single link can legally carry `load`.
    pub fn is_feasible(&self, load: f64) -> bool {
        self.scale
            .effective_bandwidth(load, self.capacity)
            .is_some()
    }

    /// The effective bandwidth (in load units) the link must run at to carry
    /// `load`, or `None` if infeasible. Zero loads need no bandwidth.
    pub fn effective_bandwidth(&self, load: f64) -> Option<f64> {
        self.scale.effective_bandwidth(load, self.capacity)
    }

    /// Power of one link carrying `load`; `Err(Infeasible)` if the load
    /// exceeds the maximum bandwidth. An idle link consumes nothing.
    pub fn link_power(&self, load: f64) -> Result<f64, Infeasible> {
        if load == 0.0 {
            return Ok(0.0);
        }
        let b = self.effective_bandwidth(load).ok_or(Infeasible)?;
        Ok(self.p_leak + self.p0 * (b * self.load_unit).powf(self.alpha))
    }

    /// Dynamic part only of [`PowerModel::link_power`].
    pub fn link_dynamic_power(&self, load: f64) -> Result<f64, Infeasible> {
        if load == 0.0 {
            return Ok(0.0);
        }
        let b = self.effective_bandwidth(load).ok_or(Infeasible)?;
        Ok(self.p0 * (b * self.load_unit).powf(self.alpha))
    }

    /// Total power of a whole load map, with its static/dynamic breakdown.
    pub fn power(&self, mesh: &Mesh, loads: &LoadMap) -> Result<PowerBreakdown, Infeasible> {
        let _ = mesh; // loads are already dense per-mesh; kept for symmetry
        let mut out = PowerBreakdown::default();
        for (_, load) in loads.iter_active() {
            out.dynamic += self.link_dynamic_power(load)?;
            out.leakage += self.p_leak;
            out.active_links += 1;
        }
        Ok(out)
    }

    /// Convenience: total power or `Err` if any link is overloaded.
    pub fn total_power(&self, mesh: &Mesh, loads: &LoadMap) -> Result<f64, Infeasible> {
        Ok(self.power(mesh, loads)?.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pamr_mesh::{Coord, Path, Step};

    #[test]
    fn idle_link_consumes_nothing() {
        let m = PowerModel::kim_horowitz();
        assert_eq!(m.link_power(0.0).unwrap(), 0.0);
        assert_eq!(m.link_dynamic_power(0.0).unwrap(), 0.0);
    }

    #[test]
    fn continuous_matches_formula() {
        let m = PowerModel::continuous(2.0, 3.0, 3.0, 10.0);
        // P = 2 + 3·4³ = 194.
        assert!((m.link_power(4.0).unwrap() - 194.0).abs() < 1e-12);
        assert!((m.link_dynamic_power(4.0).unwrap() - 192.0).abs() < 1e-12);
        assert!(m.link_power(10.0).is_ok());
        assert!(m.link_power(10.1).is_err());
    }

    #[test]
    fn discrete_rounds_up_to_next_level() {
        let m = PowerModel::kim_horowitz();
        assert_eq!(m.effective_bandwidth(1.0), Some(1000.0));
        assert_eq!(m.effective_bandwidth(1000.0), Some(1000.0));
        assert_eq!(m.effective_bandwidth(1000.1), Some(2500.0));
        assert_eq!(m.effective_bandwidth(2500.0), Some(2500.0));
        assert_eq!(m.effective_bandwidth(3499.0), Some(3500.0));
        assert_eq!(m.effective_bandwidth(3500.0), Some(3500.0));
        assert_eq!(m.effective_bandwidth(3600.0), None);
        assert!(!m.is_feasible(3600.0));
    }

    #[test]
    fn kim_horowitz_power_magnitudes() {
        // P(1 Gb/s) = 16.9 + 5.41·1^2.95 = 22.31 mW.
        let m = PowerModel::kim_horowitz();
        let p1 = m.link_power(500.0).unwrap(); // rounds up to 1 Gb/s
        assert!((p1 - (16.9 + 5.41)).abs() < 1e-9, "p1 = {p1}");
        // P(3.5 Gb/s) = 16.9 + 5.41·3.5^2.95 ≈ 235.7 mW.
        let p35 = m.link_power(3500.0).unwrap();
        let expected = 16.9 + 5.41 * 3.5f64.powf(2.95);
        assert!((p35 - expected).abs() < 1e-9);
        assert!(p35 > 200.0 && p35 < 260.0);
    }

    #[test]
    fn paper_fig2_xy_power() {
        // Fig. 2(a): both communications (sizes 1 and 3) share the same two
        // XY links; each link carries 4 = BW → P = 2 · 4³ = 128.
        let model = PowerModel::fig2();
        let mesh = Mesh::new(2, 2);
        let mut loads = LoadMap::new(&mesh);
        let xy = Path::xy(Coord::new(0, 0), Coord::new(1, 1));
        loads.add_path(&mesh, &xy, 1.0);
        loads.add_path(&mesh, &xy, 3.0);
        let p = model.power(&mesh, &loads).unwrap();
        assert!((p.total() - 128.0).abs() < 1e-9);
        assert_eq!(p.active_links, 2);
        assert_eq!(p.leakage, 0.0);
    }

    #[test]
    fn paper_fig2_1mp_and_2mp_powers() {
        let model = PowerModel::fig2();
        let mesh = Mesh::new(2, 2);
        let src = Coord::new(0, 0);
        let snk = Coord::new(1, 1);
        // 1-MP: γ1 on XY, γ2 on YX → 2·(1³ + 3³) = 56.
        let mut loads = LoadMap::new(&mesh);
        loads.add_path(&mesh, &Path::xy(src, snk), 1.0);
        loads.add_path(&mesh, &Path::yx(src, snk), 3.0);
        assert!((model.total_power(&mesh, &loads).unwrap() - 56.0).abs() < 1e-9);
        // 2-MP: split γ2 = 1 + 2 → every link carries 2 → 4·2³ = 32.
        let mut loads = LoadMap::new(&mesh);
        loads.add_path(&mesh, &Path::xy(src, snk), 1.0);
        loads.add_path(&mesh, &Path::xy(src, snk), 1.0);
        loads.add_path(&mesh, &Path::yx(src, snk), 2.0);
        assert!((model.total_power(&mesh, &loads).unwrap() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn overload_detected_via_loadmap() {
        let model = PowerModel::fig2(); // BW = 4
        let mesh = Mesh::new(2, 2);
        let mut loads = LoadMap::new(&mesh);
        let l = mesh.link_id(Coord::new(0, 0), Step::Right).unwrap();
        loads.add(l, 4.5);
        assert!(model.power(&mesh, &loads).is_err());
    }

    #[test]
    fn static_fraction() {
        let mut b = PowerBreakdown {
            leakage: 1.0,
            dynamic: 6.0,
            active_links: 3,
        };
        assert!((b.static_fraction() - 1.0 / 7.0).abs() < 1e-12);
        b.leakage = 0.0;
        b.dynamic = 0.0;
        assert_eq!(b.static_fraction(), 0.0);
    }

    #[test]
    fn capacity_eps_tolerates_float_accumulation() {
        let m = PowerModel::continuous(0.0, 1.0, 3.0, 1.0);
        // A load epsilon above capacity from floating-point accumulation.
        let load = 1.0 + 1e-9;
        assert!(load > 1.0);
        assert!(m.is_feasible(load));
        // effective bandwidth is clamped back to capacity.
        assert!(m.effective_bandwidth(load).unwrap() <= 1.0);
    }

    #[test]
    fn theory_model_unbounded() {
        let m = PowerModel::theory(3.0);
        assert!(m.is_feasible(1e12));
        assert_eq!(m.link_power(2.0).unwrap(), 8.0);
    }

    #[test]
    #[should_panic]
    fn non_convex_alpha_rejected() {
        let _ = PowerModel::continuous(0.0, 1.0, 0.5, 1.0);
    }
}
