//! Energy accounting on top of the instantaneous power model.
//!
//! The paper optimises *power* for a steady communication pattern; systems
//! people usually want the integral. These helpers convert a routing's
//! power breakdown into energy over an interval and expose the discrete
//! frequency ladder for DVFS-aware tooling (the nocsim crate and the
//! benches use them).

use crate::model::{FrequencyScale, PowerModel};

impl PowerModel {
    /// The discrete frequency levels (in load units), or `None` for a
    /// continuous model.
    pub fn levels(&self) -> Option<&[f64]> {
        match &self.scale {
            FrequencyScale::Discrete(l) => Some(l),
            FrequencyScale::Continuous => None,
        }
    }

    /// The highest effective bandwidth any link can run at.
    pub fn max_bandwidth(&self) -> f64 {
        match &self.scale {
            FrequencyScale::Discrete(l) => *l.last().expect("discrete model has levels"),
            FrequencyScale::Continuous => self.capacity,
        }
    }

    /// Power of an active link running at a given *level* (not load):
    /// useful to tabulate the ladder. The level must be positive.
    pub fn power_at_level(&self, level: f64) -> f64 {
        assert!(level > 0.0);
        self.p_leak + self.p0 * (level * self.load_unit).powf(self.alpha)
    }

    /// The `(level, power)` ladder of a discrete model.
    pub fn power_ladder(&self) -> Vec<(f64, f64)> {
        self.levels()
            .map(|ls| ls.iter().map(|&l| (l, self.power_at_level(l))).collect())
            .unwrap_or_default()
    }

    /// Energy (power × duration) of carrying `load` on one link for
    /// `seconds`; power in mW and seconds give millijoules.
    pub fn link_energy(&self, load: f64, seconds: f64) -> Result<f64, crate::Infeasible> {
        Ok(self.link_power(load)? * seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_of_the_campaign_model() {
        let m = PowerModel::kim_horowitz();
        let ladder = m.power_ladder();
        assert_eq!(ladder.len(), 3);
        assert_eq!(ladder[0].0, 1000.0);
        assert_eq!(ladder[2].0, 3500.0);
        // Powers strictly increase along the ladder.
        assert!(ladder[0].1 < ladder[1].1 && ladder[1].1 < ladder[2].1);
        // And match the fitted formula: 16.9 + 5.41·f^2.95 (f in Gb/s).
        assert!((ladder[0].1 - (16.9 + 5.41)).abs() < 1e-9);
        assert!((ladder[1].1 - (16.9 + 5.41 * 2.5f64.powf(2.95))).abs() < 1e-9);
    }

    #[test]
    fn levels_and_max_bandwidth() {
        let d = PowerModel::kim_horowitz();
        assert_eq!(d.levels().unwrap().len(), 3);
        assert_eq!(d.max_bandwidth(), 3500.0);
        let c = PowerModel::continuous(0.0, 1.0, 3.0, 7.5);
        assert!(c.levels().is_none());
        assert_eq!(c.max_bandwidth(), 7.5);
        assert!(c.power_ladder().is_empty());
    }

    #[test]
    fn energy_is_power_times_time() {
        let m = PowerModel::kim_horowitz();
        let e = m.link_energy(900.0, 2.0).unwrap();
        assert!((e - 2.0 * (16.9 + 5.41)).abs() < 1e-9);
        assert!(m.link_energy(9000.0, 1.0).is_err());
        assert_eq!(m.link_energy(0.0, 5.0).unwrap(), 0.0);
    }
}
