//! Lemma 2: the anti-diagonal instance on which single-path Manhattan
//! routing (plain YX) beats XY by `Θ(p^{α−1})`.
//!
//! On a `(p'+1) × (p'+1)` CMP, take the `p'` unit communications
//! `γ_i = (C_{1,i}, C_{i,p'+1}, 1)`, `i ∈ {1, …, p'}`. Routed XY they all
//! pile up on row 1 and on the last column (link loads up to `p'`, power
//! `Θ(p'^{α+1})`); routed YX they use pairwise disjoint links (every load
//! is 1, power `p'(p'+1)`).

use pamr_mesh::{Coord, Mesh};
use pamr_power::PowerModel;
use pamr_routing::{xy_routing, yx_routing, Comm, CommSet};

/// Builds the Lemma 2 instance for a given `p'` (mesh side `p' + 1`).
///
/// # Panics
/// Panics if `p_prime == 0`.
pub fn lemma2_instance(p_prime: usize) -> CommSet {
    assert!(p_prime >= 1);
    let p = p_prime + 1;
    let mesh = Mesh::new(p, p);
    let comms = (1..=p_prime)
        .map(|i| {
            Comm::new(
                Coord::new(0, i - 1),       // paper C_{1,i}
                Coord::new(i - 1, p_prime), // paper C_{i,p'+1}
                1.0,
            )
        })
        .collect();
    CommSet::new(mesh, comms)
}

/// Powers `(P_XY, P_YX)` of the two routings of the Lemma 2 instance.
pub fn lemma2_ratio(p_prime: usize, model: &PowerModel) -> (f64, f64) {
    let cs = lemma2_instance(p_prime);
    let p_xy = xy_routing(&cs)
        .power(&cs, model)
        .expect("XY loads must be feasible under a theory model")
        .total();
    let p_yx = yx_routing(&cs)
        .power(&cs, model)
        .expect("YX loads must be feasible")
        .total();
    (p_xy, p_yx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yx_loads_are_all_unit() {
        let cs = lemma2_instance(5);
        let loads = yx_routing(&cs).loads(&cs);
        assert!((loads.max_load() - 1.0).abs() < 1e-12);
        // P_YX = Σ 2i·1^α... in 0-based code: comm i has length
        // (i−1) + (p'+1−i) = p' hmm — verify against direct count.
        let total_links: f64 = cs.comms().iter().map(|c| c.len() as f64).sum();
        assert_eq!(loads.total(), total_links);
    }

    #[test]
    fn xy_piles_up_on_the_last_column() {
        let p_prime = 6;
        let cs = lemma2_instance(p_prime);
        let loads = xy_routing(&cs).loads(&cs);
        // The most loaded link carries Θ(p') communications.
        assert!(loads.max_load() >= (p_prime - 1) as f64);
    }

    #[test]
    fn closed_forms_match() {
        // P_XY = Σ_{v=1}^{p'} min(v, ...)·: the row-1 link (1,v)→(1,v+1)
        // carries the comms with i ≤ v → load v; the column link
        // (u,p'+1)→(u+1,p'+1) carries comms with i > u → load p'−u.
        let p_prime = 7;
        let model = PowerModel::theory(3.0);
        let (p_xy, p_yx) = lemma2_ratio(p_prime, &model);
        let expected_xy: f64 = (1..=p_prime).map(|v| (v as f64).powi(3)).sum::<f64>()
            + (1..=p_prime)
                .map(|u| ((p_prime - u) as f64).powi(3))
                .sum::<f64>();
        assert!((p_xy - expected_xy).abs() < 1e-9, "{p_xy} vs {expected_xy}");
        // P_YX: all unit loads; total links = Σ length = p'·p'.
        let expected_yx = (p_prime * p_prime) as f64;
        assert!((p_yx - expected_yx).abs() < 1e-9, "{p_yx} vs {expected_yx}");
    }

    #[test]
    fn ratio_grows_as_p_to_alpha_minus_one() {
        let model = PowerModel::theory(3.0);
        let ratio = |pp: usize| {
            let (a, b) = lemma2_ratio(pp, &model);
            a / b
        };
        // α = 3 → ratio ~ p²: doubling p' quadruples the ratio (asymptotically).
        let r8 = ratio(8);
        let r16 = ratio(16);
        let r32 = ratio(32);
        assert!(r16 / r8 > 3.0 && r16 / r8 < 5.0, "r16/r8 = {}", r16 / r8);
        assert!(
            r32 / r16 > 3.2 && r32 / r16 < 4.8,
            "r32/r16 = {}",
            r32 / r16
        );
    }

    #[test]
    fn comms_are_pairwise_disjoint_under_yx() {
        let cs = lemma2_instance(6);
        let r = yx_routing(&cs);
        let mesh = cs.mesh();
        let mut seen = std::collections::HashSet::new();
        for i in 0..cs.len() {
            for l in r.path(i).links(mesh) {
                assert!(seen.insert(l), "link {l} reused across communications");
            }
        }
    }
}
