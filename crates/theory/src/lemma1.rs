//! Lemma 1: the number of Manhattan paths from `C_{1,1}` to `C_{p,q}` is
//! `C(p+q−2, p−1)`.

use pamr_mesh::path::binomial;

/// Number of Manhattan paths from one corner of a `p × q` mesh to the
/// opposite corner (Lemma 1).
///
/// # Panics
/// Panics if `p` or `q` is zero, or on `u128` overflow (mesh sides beyond
/// any physical CMP).
pub fn manhattan_path_count(p: usize, q: usize) -> u128 {
    assert!(p >= 1 && q >= 1);
    binomial((p + q - 2) as u128, (p - 1) as u128)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pamr_mesh::{Coord, Mesh, Path};

    #[test]
    fn closed_form_matches_enumeration() {
        for (p, q) in [(1, 1), (1, 7), (2, 2), (3, 4), (4, 4), (5, 3)] {
            let mesh = Mesh::new(p, q);
            let n = Path::enumerate_all(&mesh, Coord::new(0, 0), Coord::new(p - 1, q - 1)).len();
            assert_eq!(manhattan_path_count(p, q), n as u128, "mismatch on {p}×{q}");
        }
    }

    #[test]
    fn paper_8x8_value() {
        // C(14, 7) = 3432 paths corner-to-corner on the campaign's 8×8 CMP.
        assert_eq!(manhattan_path_count(8, 8), 3432);
    }

    #[test]
    fn recurrence_holds() {
        // N(p, q) = N(p−1, q) + N(p, q−1) (the proof's recursion).
        for p in 2..8 {
            for q in 2..8 {
                assert_eq!(
                    manhattan_path_count(p, q),
                    manhattan_path_count(p - 1, q) + manhattan_path_count(p, q - 1)
                );
            }
        }
    }

    #[test]
    fn degenerate_rows_and_columns() {
        assert_eq!(manhattan_path_count(1, 10), 1);
        assert_eq!(manhattan_path_count(10, 1), 1);
    }
}
