//! # pamr-theory — the theoretical results of Section 4, executable
//!
//! Machine-checkable constructions for every theoretical claim of the
//! paper:
//!
//! * **Lemma 1** ([`lemma1`]) — there are `C(p+q−2, p−1)` Manhattan paths
//!   from corner to corner;
//! * **Theorem 1** ([`thm1`]) — single source/destination: the
//!   diagonal-spreading max-MP routing pattern of Figure 4, whose power
//!   stays `O(1)` while XY pays `O(p)`, realising the minimum upper bound
//!   `O(q)` of the XY/max-MP power ratio;
//! * **Theorem 2 / Lemma 2** ([`lem2`]) — multiple sources/destinations:
//!   the anti-diagonal instance on which a plain YX (single-path!) routing
//!   beats XY by `Θ(p^{α−1})`;
//! * **Theorem 3** ([`np`]) — NP-completeness: the polynomial reduction
//!   from 2-PARTITION to s-MP bandwidth feasibility, an exact subset-sum
//!   solver, and a feasibility checker mirroring the proof's structure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lem2;
pub mod lemma1;
pub mod np;
pub mod thm1;
pub mod thm2;

pub use lem2::{lemma2_instance, lemma2_ratio};
pub use lemma1::manhattan_path_count;
pub use np::{partition_exists, reduction_feasible, reduction_instance, ReductionInstance};
pub use thm1::{fig4_pattern, xy_corner_power, Fig4Pattern};
pub use thm2::{
    crossing_power_sum, directional_crossings, thm2_manhattan_lower_bound, thm2_xy_upper_bound,
};
