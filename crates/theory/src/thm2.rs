//! Theorem 2: numeric forms of the proof's two bounds for the multiple
//! source/destination case.
//!
//! With `P_leak = 0`, `P_0 = 1` and continuous frequencies, and writing
//! `K_k^{(d)}` for the total weight of direction-`d` communications
//! crossing diagonal `k`:
//!
//! * **upper bound on XY** (the permutation-pairing argument):
//!   `P_XY ≤ 2 · 2^α · Σ_{k,d} (K_k^{(d)})^α`;
//! * **lower bound on any Manhattan routing** (ideal diagonal spreading,
//!   relaxed with the uniform `2p` link count):
//!   `P_MP ≥ (2p)^{1−α} · Σ_{k,d} (K_k^{(d)})^α`.
//!
//! Together they give the `O(p^{α−1})` minimum upper bound of the
//! XY/Manhattan power ratio, which Lemma 2 shows is attained. The tests
//! validate both inequalities against the actual routing machinery on
//! random instances.

use pamr_routing::CommSet;

/// The diagonal crossing weights `K_k^{(d)}`: element `[d][k]` is the total
/// weight of direction-`d` communications whose paths cross from diagonal
/// `k` to `k + 1` (0-based diagonals; `d` in paper order 1..4).
pub fn directional_crossings(cs: &CommSet) -> [Vec<f64>; 4] {
    let mesh = cs.mesh();
    let mut out: [Vec<f64>; 4] =
        std::array::from_fn(|_| vec![0.0; mesh.num_diagonals().saturating_sub(1)]);
    for c in cs.comms() {
        if c.is_local() {
            continue;
        }
        let d = c.quadrant();
        let ks = mesh.diag_index(c.src, d);
        let ke = mesh.diag_index(c.snk, d);
        for slot in &mut out[d.paper_d() - 1][ks..ke] {
            *slot += c.weight;
        }
    }
    out
}

/// `Σ_{k,d} (K_k^{(d)})^α` — the quantity both Theorem 2 bounds scale.
pub fn crossing_power_sum(cs: &CommSet, alpha: f64) -> f64 {
    directional_crossings(cs)
        .iter()
        .flat_map(|v| v.iter())
        .map(|&k| k.powf(alpha))
        .sum()
}

/// Theorem 2's upper bound on the XY power: `2 · 2^α · Σ (K_k^{(d)})^α`.
pub fn thm2_xy_upper_bound(cs: &CommSet, alpha: f64) -> f64 {
    2.0 * 2f64.powf(alpha) * crossing_power_sum(cs, alpha)
}

/// Theorem 2's lower bound on the power of **any** Manhattan routing
/// (single- or multi-path): `(2p)^{1−α} · Σ (K_k^{(d)})^α`, with `p` the
/// short side of the mesh.
pub fn thm2_manhattan_lower_bound(cs: &CommSet, alpha: f64) -> f64 {
    let p = cs.mesh().rows().min(cs.mesh().cols()) as f64;
    (2.0 * p).powf(1.0 - alpha) * crossing_power_sum(cs, alpha)
}

/// Convenience check used by the `theory` binary: both Theorem 2 bounds
/// hold for the instance under the theory model with the given α.
pub fn thm2_bounds_hold(cs: &CommSet, alpha: f64) -> bool {
    use pamr_power::PowerModel;
    use pamr_routing::xy_routing;
    let model = PowerModel::theory(alpha);
    let p_xy = xy_routing(cs)
        .power(cs, &model)
        .expect("theory model is uncapacitated")
        .total();
    p_xy <= thm2_xy_upper_bound(cs, alpha) + 1e-9 * p_xy.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pamr_mesh::{Coord, Mesh};
    use pamr_power::PowerModel;
    use pamr_routing::{frank_wolfe, ideal_power_lower_bound, xy_routing, Comm, HeuristicKind};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(seed: u64, p: usize, q: usize, n: usize) -> CommSet {
        let mesh = Mesh::new(p, q);
        let mut rng = SmallRng::seed_from_u64(seed);
        let comms = (0..n)
            .map(|_| loop {
                let a = Coord::new(rng.gen_range(0..p), rng.gen_range(0..q));
                let b = Coord::new(rng.gen_range(0..p), rng.gen_range(0..q));
                if a != b {
                    return Comm::new(a, b, rng.gen_range(1.0..5.0));
                }
            })
            .collect();
        CommSet::new(mesh, comms)
    }

    #[test]
    fn crossings_count_every_hop_once() {
        // Σ_{k,d} K_k^{(d)} = Σ_i δ_i · ℓ_i (each unit of flow crosses one
        // diagonal per hop, in exactly its own direction family).
        let cs = random_instance(3, 5, 6, 10);
        let total: f64 = directional_crossings(&cs)
            .iter()
            .flat_map(|v| v.iter())
            .sum();
        let expected: f64 = cs.comms().iter().map(|c| c.weight * c.len() as f64).sum();
        assert!((total - expected).abs() < 1e-9);
    }

    #[test]
    fn xy_upper_bound_holds_on_random_instances() {
        for alpha in [2.2f64, 2.95, 3.0] {
            let model = PowerModel::theory(alpha);
            for seed in 0..10u64 {
                let cs = random_instance(seed, 6, 6, 12);
                let p_xy = xy_routing(&cs).power(&cs, &model).unwrap().total();
                let ub = thm2_xy_upper_bound(&cs, alpha);
                assert!(
                    p_xy <= ub + 1e-9 * p_xy,
                    "seed {seed}, α={alpha}: P_XY = {p_xy} > bound {ub}"
                );
                assert!(thm2_bounds_hold(&cs, alpha));
            }
        }
    }

    #[test]
    fn manhattan_lower_bound_holds_for_every_policy_and_fw() {
        let alpha = 3.0;
        let model = PowerModel::theory(alpha);
        for seed in 20..26u64 {
            let cs = random_instance(seed, 5, 5, 8);
            let lb = thm2_manhattan_lower_bound(&cs, alpha);
            for kind in HeuristicKind::ALL {
                let p = kind.route(&cs, &model).power(&cs, &model).unwrap().total();
                assert!(lb <= p + 1e-9, "seed {seed}: {kind} below the LB");
            }
            // …and even the multi-path relaxation respects it.
            let fw = frank_wolfe(&cs, &model, 150);
            assert!(lb <= fw.dynamic_power + 1e-6 * fw.dynamic_power.max(1.0));
        }
    }

    #[test]
    fn refined_diagonal_bound_dominates_the_crude_one() {
        // fractional::ideal_power_lower_bound uses exact per-diagonal link
        // counts (≤ 2p−1 < 2p), so it is at least as tight as the closed
        // form used in the proof.
        let alpha = 2.95;
        let model = PowerModel::theory(alpha);
        for seed in 40..46u64 {
            let cs = random_instance(seed, 4, 7, 9);
            let crude = thm2_manhattan_lower_bound(&cs, alpha);
            let refined = ideal_power_lower_bound(&cs, &model);
            assert!(
                refined + 1e-9 >= crude,
                "seed {seed}: refined {refined} < crude {crude}"
            );
        }
    }

    #[test]
    fn bounds_are_tight_up_to_p_alpha_minus_one() {
        // Ratio UB/LB = 2·2^α·(2p)^{α−1} — the O(p^{α−1}) of the theorem.
        let cs = random_instance(7, 6, 6, 10);
        let alpha = 3.0;
        let ratio = thm2_xy_upper_bound(&cs, alpha) / thm2_manhattan_lower_bound(&cs, alpha);
        let expected = 2.0 * 2f64.powf(alpha) * 12f64.powf(alpha - 1.0);
        assert!((ratio - expected).abs() < 1e-6 * expected);
    }
}
