//! Theorem 1: the Figure 4 diagonal-spreading max-MP routing pattern.
//!
//! On a square `p × p` CMP with `p = 2p'`, all communications (total size
//! `K`) go from `C_{1,1}` to `C_{p,p}`. The XY routing pays
//! `(2p−2) · P(K)` — every link on the single XY path carries everything —
//! while the Figure 4 pattern spreads the flow over the diagonals with
//!
//! * `h_k = K/k` on the horizontal links entering semi-diagonal `D_{2k}`,
//! * `r_{k,j} = K·(k+1−j)/(k(k+1))` and `d_{k,j} = K·j/(k(k+1))` leaving it,
//!
//! keeping the total power `O(K^α)` — a constant number of "link
//! equivalents" — so the XY/max-MP power ratio grows as `Θ(p)`.
//!
//! This module builds the exact per-link loads of the pattern (first half
//! explicitly, second half by reflection across the anti-diagonal) and
//! verifies flow conservation numerically.

use pamr_mesh::{Coord, LinkId, LoadMap, Mesh, Step};
use pamr_power::PowerModel;

/// The Figure 4 routing pattern instantiated on a concrete mesh.
#[derive(Debug, Clone)]
pub struct Fig4Pattern {
    /// The `2p' × 2p'` mesh.
    pub mesh: Mesh,
    /// Per-link loads of the max-MP pattern.
    pub loads: LoadMap,
    /// Total flow `K` injected at `C_{1,1}` and absorbed at `C_{p,p}`.
    pub total: f64,
}

/// Builds the Figure 4 pattern for a `2p' × 2p'` mesh carrying total flow
/// `k_total` from corner to corner.
///
/// # Panics
/// Panics if `p_prime == 0` or `k_total <= 0`.
pub fn fig4_pattern(p_prime: usize, k_total: f64) -> Fig4Pattern {
    assert!(p_prime >= 1, "need a positive half-width");
    assert!(k_total > 0.0);
    let p = 2 * p_prime;
    let mesh = Mesh::new(p, p);
    let mut loads = LoadMap::new(&mesh);
    // Work in the paper's 1-based coordinates; `at` converts.
    let at = |u: usize, v: usize| Coord::new(u - 1, v - 1);

    // First half: links up to the main anti-diagonal.
    let mut first_half: Vec<(Coord, Step, f64)> = Vec::new();
    // Horizontal h_k links: C_{j,2k−j} → C_{j,2k+1−j}, j ∈ 1..=k, load K/k.
    for k in 1..=p_prime {
        let h_k = k_total / k as f64;
        for j in 1..=k {
            first_half.push((at(j, 2 * k - j), Step::Right, h_k));
        }
    }
    // Splitting links from semi-diagonal D_{2k}: core C_{j,2k+1−j} sends
    // r_{k,j} right and d_{k,j} down.
    for k in 1..=p_prime.saturating_sub(1) {
        let denom = (k * (k + 1)) as f64;
        for j in 1..=k {
            let r = k_total * (k + 1 - j) as f64 / denom;
            let d = k_total * j as f64 / denom;
            first_half.push((at(j, 2 * k + 1 - j), Step::Right, r));
            first_half.push((at(j, 2 * k + 1 - j), Step::Down, d));
        }
    }
    // Second half: reflect across the anti-diagonal. The reflection
    // τ(u,v) = (p+1−v, p+1−u) maps a right link a→b onto the down link
    // τ(b)→τ(a), preserving the down-right flow direction and stitching the
    // halves together on the anti-diagonal cores.
    let tau = |c: Coord| Coord::new(p - 1 - c.v, p - 1 - c.u);
    let mut all = first_half.clone();
    for &(from, step, load) in &first_half {
        let to = mesh.step(from, step).unwrap();
        let (nfrom, nstep) = match step {
            Step::Right => (tau(to), Step::Down),
            Step::Down => (tau(to), Step::Right),
            _ => unreachable!("pattern only uses Right/Down"),
        };
        all.push((nfrom, nstep, load));
    }
    for (from, step, load) in all {
        let id: LinkId = mesh
            .link_id(from, step)
            .unwrap_or_else(|| panic!("pattern link {from}+{step} leaves the mesh"));
        loads.add(id, load);
    }
    Fig4Pattern {
        mesh,
        loads,
        total: k_total,
    }
}

impl Fig4Pattern {
    /// Net outflow (out − in) at a core. Zero everywhere except `+K` at the
    /// source corner and `−K` at the sink corner.
    pub fn net_flow(&self, c: Coord) -> f64 {
        let mut net = 0.0;
        for s in Step::ALL {
            if let Some(id) = self.mesh.link_id(c, s) {
                net += self.loads.get(id);
            }
            // Incoming link from the neighbour in direction s.
            if let Some(nb) = self.mesh.step(c, s) {
                if let Some(id) = self.mesh.link_id(nb, s.opposite()) {
                    net -= self.loads.get(id);
                }
            }
        }
        net
    }

    /// Checks flow conservation at every core (within `eps`).
    pub fn verify_conservation(&self, eps: f64) -> bool {
        let p = self.mesh.rows();
        let src = Coord::new(0, 0);
        let snk = Coord::new(p - 1, p - 1);
        self.mesh.cores().all(|c| {
            let expected = if c == src {
                self.total
            } else if c == snk {
                -self.total
            } else {
                0.0
            };
            (self.net_flow(c) - expected).abs() <= eps
        })
    }

    /// Total power of the pattern under `model`.
    pub fn power(&self, model: &PowerModel) -> f64 {
        model
            .total_power(&self.mesh, &self.loads)
            .expect("pattern loads must be feasible under the given model")
    }
}

/// Power of the XY routing of the same corner-to-corner traffic: all `K`
/// bytes cross each of the `2p − 2` links of the single XY path.
pub fn xy_corner_power(p: usize, k_total: f64, model: &PowerModel) -> f64 {
    (2 * p - 2) as f64
        * model
            .link_power(k_total)
            .expect("XY corner load infeasible")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_identities_of_the_proof() {
        // r_{k,j} + d_{k,j−1} = h_{k+1} and r_{k,j} + d_{k,j} = h_k.
        let k_total = 1.0;
        for k in 1..6usize {
            let denom = (k * (k + 1)) as f64;
            let h_k = k_total / k as f64;
            let h_k1 = k_total / (k + 1) as f64;
            for j in 1..=k {
                let r = k_total * (k + 1 - j) as f64 / denom;
                let d = k_total * j as f64 / denom;
                assert!((r + d - h_k).abs() < 1e-12);
                if j >= 2 {
                    let d_prev = k_total * (j - 1) as f64 / denom;
                    assert!((r + d_prev - h_k1).abs() < 1e-12);
                }
            }
            // Edge identities: r_{k,1} = h_{k+1} and d_{k,k} = h_{k+1}.
            let r1 = k_total * k as f64 / denom;
            let dk = k_total * k as f64 / denom;
            assert!((r1 - h_k1).abs() < 1e-12);
            assert!((dk - h_k1).abs() < 1e-12);
        }
    }

    #[test]
    fn pattern_conserves_flow() {
        for p_prime in 1..=6 {
            let pat = fig4_pattern(p_prime, 10.0);
            assert!(
                pat.verify_conservation(1e-9),
                "conservation fails for p' = {p_prime}"
            );
        }
    }

    #[test]
    fn pattern_power_is_bounded_by_proof_constant() {
        // (1/2)·P_max ≤ 2·K^α·Σ 1/k^{α−1} ≤ 2·K^α·ζ(α−1); with α = 3,
        // ζ(2) = π²/6, so P_max ≤ 4·K³·π²/6 ≈ 6.58·K³.
        let model = PowerModel::theory(3.0);
        let k_total = 2.0;
        for p_prime in 1..=8 {
            let pat = fig4_pattern(p_prime, k_total);
            let p = pat.power(&model);
            let bound = 4.0 * k_total.powi(3) * std::f64::consts::PI.powi(2) / 6.0;
            assert!(p <= bound, "p'={p_prime}: {p} > {bound}");
        }
    }

    #[test]
    fn ratio_grows_linearly_in_p() {
        let model = PowerModel::theory(3.0);
        let k_total = 1.0;
        let ratio = |p_prime: usize| {
            let pat = fig4_pattern(p_prime, k_total);
            xy_corner_power(2 * p_prime, k_total, &model) / pat.power(&model)
        };
        let r4 = ratio(4);
        let r8 = ratio(8);
        let r16 = ratio(16);
        // Doubling p roughly doubles the ratio (within 25%).
        assert!((r8 / r4 - 2.0).abs() < 0.5, "r8/r4 = {}", r8 / r4);
        assert!((r16 / r8 - 2.0).abs() < 0.5, "r16/r8 = {}", r16 / r8);
        assert!(r16 > r8 && r8 > r4);
    }

    #[test]
    fn smallest_pattern_is_a_plain_path() {
        // p' = 1: a 2×2 mesh; the pattern is K on (0,0)→(0,1)→(1,1).
        let pat = fig4_pattern(1, 5.0);
        assert_eq!(pat.loads.active_links(), 2);
        assert!((pat.loads.total() - 10.0).abs() < 1e-12);
        assert!(pat.verify_conservation(1e-12));
    }

    #[test]
    fn xy_power_formula() {
        let model = PowerModel::theory(3.0);
        // p = 4, K = 2: 6 links × 2³ = 48.
        assert!((xy_corner_power(4, 2.0, &model) - 48.0).abs() < 1e-12);
    }
}
