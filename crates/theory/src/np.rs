//! Theorem 3: NP-completeness of power-minimal s-MP routing, via the
//! paper's polynomial reduction from 2-PARTITION.
//!
//! Given integers `a_1..a_n` (sum `S`) and the path bound `s`, the reduced
//! instance lives on a `2 × q` mesh with `q = (s−1)n + 2` and
//! `BW = S/2 + (s−1)n`:
//!
//! * *traversing* communications `γ_i = (C_{1,(i−1)(s−1)+1}, C_{2,q},
//!   a_i + s − 1)` for `i ∈ 1..n`;
//! * *blocking* one-hop vertical communications saturating every column:
//!   weight `BW − 1` on columns `1..q−2` and `BW − S/2` on the last two.
//!
//! A bandwidth-feasible s-MP routing exists **iff** the `a_i` can be split
//! into two halves of sum `S/2`: the proof shows every traversing
//! communication is forced to drop one unit down each of its `s−1`
//! dedicated columns and send its remaining `a_i` units down column `q−1`
//! or column `q`, whose residual capacities are exactly `S/2` each.
//!
//! ## Erratum (documented in DESIGN.md)
//!
//! The paper's YES-direction ("no link bandwidth is exceeded") checks only
//! the **vertical** links. The proof's routing also loads the row-1
//! horizontal links: after the last dedicated column, row 1 carries all the
//! residual flows at once — `Σ a_i = S` — so the construction additionally
//! needs `S ≤ BW`, i.e. `S ≤ 2(s−1)n`. [`ReductionInstance::horizontal_headroom_ok`]
//! exposes the condition; our tests use compliant instances, for which the
//! equivalence holds exactly as the paper argues.

use pamr_mesh::{Coord, Mesh, Path, Step};
use pamr_power::PowerModel;
use pamr_routing::{Comm, CommSet, Routing};

/// A reduced 2-PARTITION → s-MP routing instance.
#[derive(Debug, Clone)]
pub struct ReductionInstance {
    /// The communications on the `2 × q` mesh.
    pub cs: CommSet,
    /// Maximum link bandwidth `BW = S/2 + (s−1)n`.
    pub bw: f64,
    /// The 2-PARTITION integers.
    pub a: Vec<u64>,
    /// Path bound `s ≥ 2`.
    pub s: usize,
}

impl ReductionInstance {
    /// A power model enforcing exactly the bandwidth constraint (power
    /// values are irrelevant to the feasibility question).
    pub fn model(&self) -> PowerModel {
        PowerModel::continuous(0.0, 1.0, 3.0, self.bw)
    }

    /// Mesh width `q`.
    pub fn q(&self) -> usize {
        self.cs.mesh().cols()
    }

    /// True iff the proof's routing also fits the horizontal links:
    /// `S ≤ BW ⇔ S ≤ 2(s−1)n` (see the module-level erratum).
    pub fn horizontal_headroom_ok(&self) -> bool {
        let sum: u64 = self.a.iter().sum();
        sum as f64 <= self.bw
    }
}

/// Builds the reduction instance for integers `a` and path bound `s`.
///
/// # Panics
/// Panics if `a` is empty, any `a_i` is zero, or `s < 2`.
pub fn reduction_instance(a: &[u64], s: usize) -> ReductionInstance {
    assert!(
        !a.is_empty() && a.iter().all(|&x| x > 0),
        "invalid 2-PARTITION input"
    );
    assert!(s >= 2, "the reduction needs s ≥ 2");
    let n = a.len();
    let q = (s - 1) * n + 2;
    let sum: u64 = a.iter().sum();
    let bw = sum as f64 / 2.0 + ((s - 1) * n) as f64;
    let mesh = Mesh::new(2, q);
    let mut comms = Vec::with_capacity(n + q);
    // Traversing communications (paper 1-based column (i−1)(s−1)+1).
    for (i, &ai) in a.iter().enumerate() {
        comms.push(Comm::new(
            Coord::new(0, i * (s - 1)),
            Coord::new(1, q - 1),
            (ai + (s as u64 - 1)) as f64,
        ));
    }
    // Blocking one-hop vertical communications.
    for col in 0..q - 2 {
        comms.push(Comm::new(Coord::new(0, col), Coord::new(1, col), bw - 1.0));
    }
    for col in [q - 2, q - 1] {
        comms.push(Comm::new(
            Coord::new(0, col),
            Coord::new(1, col),
            bw - sum as f64 / 2.0,
        ));
    }
    ReductionInstance {
        cs: CommSet::new(mesh, comms),
        bw,
        a: a.to_vec(),
        s,
    }
}

/// Exact pseudo-polynomial 2-PARTITION solver (subset-sum DP). Returns a
/// subset selector with `Σ_{chosen} a_i = S/2`, or `None`.
pub fn partition_exists(a: &[u64]) -> Option<Vec<bool>> {
    let sum: u64 = a.iter().sum();
    if !sum.is_multiple_of(2) {
        return None;
    }
    let half = (sum / 2) as usize;
    // reach[t] = Some(i) where item i was the last one used to reach sum t.
    let mut reach: Vec<Option<usize>> = vec![None; half + 1];
    reach[0] = Some(usize::MAX);
    for (i, &ai) in a.iter().enumerate() {
        let ai = ai as usize;
        for t in (ai..=half).rev() {
            if reach[t].is_none() && reach[t - ai].is_some() {
                reach[t] = Some(i);
            }
        }
    }
    reach[half]?;
    // Back-track the chosen items.
    let mut chosen = vec![false; a.len()];
    let mut t = half;
    while t > 0 {
        let i = reach[t].expect("backtrack broke");
        chosen[i] = true;
        t -= a[i] as usize;
    }
    Some(chosen)
}

/// Builds the explicit feasible s-MP routing from a 2-PARTITION solution,
/// exactly as in the proof: communication `γ_i` splits into `s − 1` unit
/// flows dropping down its dedicated columns plus one flow of size `a_i`
/// dropping down column `q−1` (if `chosen[i]`) or column `q` (otherwise).
pub fn routing_from_partition(inst: &ReductionInstance, chosen: &[bool]) -> Routing {
    let n = inst.a.len();
    let s = inst.s;
    let q = inst.q();
    let mut flows: Vec<Vec<(Path, f64)>> = Vec::with_capacity(inst.cs.len());
    // Path on the 2×q mesh from (0, c0) going right to `down_col`, dropping
    // down, then right to (1, q−1).
    let make_path = |c0: usize, down_col: usize| {
        let mut moves = Vec::with_capacity(q - c0);
        moves.extend(std::iter::repeat_n(Step::Right, down_col - c0));
        moves.push(Step::Down);
        moves.extend(std::iter::repeat_n(Step::Right, q - 1 - down_col));
        Path::from_moves(Coord::new(0, c0), moves)
    };
    for (i, (&ai, &picked)) in inst.a.iter().zip(chosen).enumerate() {
        let c0 = i * (s - 1);
        let mut f = Vec::with_capacity(s);
        for k in 0..s - 1 {
            f.push((make_path(c0, c0 + k), 1.0));
        }
        let last_col = if picked { q - 2 } else { q - 1 };
        f.push((make_path(c0, last_col), ai as f64));
        flows.push(f);
    }
    // Blocking communications: single vertical hop.
    for comm in &inst.cs.comms()[n..] {
        flows.push(vec![(
            Path::from_moves(comm.src, vec![Step::Down]),
            comm.weight,
        )]);
    }
    Routing::multi(flows)
}

/// Decides whether the reduced instance admits a bandwidth-feasible s-MP
/// routing, by exhausting the structure the proof forces: each traversing
/// communication drops one unit down each dedicated column and chooses
/// column `q−1` or `q` for its remaining `a_i` units. All `2^n` choices are
/// tried with exact load accounting — use only for small `n`.
pub fn reduction_feasible(inst: &ReductionInstance) -> bool {
    let n = inst.a.len();
    assert!(n <= 24, "exhaustive check only meant for small instances");
    let model = inst.model();
    for mask in 0u32..(1 << n) {
        let chosen: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
        let routing = routing_from_partition(inst, &chosen);
        if routing.is_feasible(&inst.cs, &model) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dp_solves_classic_partitions() {
        let chosen = partition_exists(&[3, 1, 1, 2, 2, 1]).unwrap();
        let sum: u64 = [3u64, 1, 1, 2, 2, 1]
            .iter()
            .zip(&chosen)
            .filter(|(_, &c)| c)
            .map(|(&a, _)| a)
            .sum();
        assert_eq!(sum, 5);
        assert!(partition_exists(&[2, 2, 2]).is_none()); // odd count of 2s
        assert!(partition_exists(&[1, 2]).is_none());
        assert!(partition_exists(&[7]).is_none());
        assert!(partition_exists(&[4, 4]).is_some());
    }

    #[test]
    fn instance_shape_matches_paper() {
        let inst = reduction_instance(&[3, 5, 2], 2);
        // q = (s−1)n + 2 = 5; nc = n + q = 8; BW = 5 + 3 = 8.
        assert_eq!(inst.q(), 5);
        assert_eq!(inst.cs.len(), 8);
        assert!((inst.bw - 8.0).abs() < 1e-12);
        // Total weight saturates all vertical capacity: q·BW.
        let vertical_total: f64 = inst.cs.total_weight() - 0.0; // all comms eventually cross a vertical link once
        assert!((vertical_total - inst.q() as f64 * inst.bw).abs() < 1e-9);
    }

    #[test]
    fn partition_yields_feasible_routing() {
        // Compliant instance: S = 8 ≤ 2(s−1)n = 12.
        let a = [1, 2, 1, 2, 1, 1];
        let inst = reduction_instance(&a, 2);
        assert!(inst.horizontal_headroom_ok());
        let chosen = partition_exists(&a).unwrap();
        let routing = routing_from_partition(&inst, &chosen);
        assert!(routing.is_structurally_valid(&inst.cs, inst.s));
        assert!(routing.is_feasible(&inst.cs, &inst.model()));
    }

    #[test]
    fn erratum_horizontal_overload_detected() {
        // Non-compliant instance (S = 14 > 2(s−1)n = 8): the proof's routing
        // overloads row-1 horizontal links even though a partition exists —
        // the erratum documented at module level.
        let a = [3, 5, 2, 4];
        let inst = reduction_instance(&a, 2);
        assert!(!inst.horizontal_headroom_ok());
        let chosen = partition_exists(&a).unwrap();
        let routing = routing_from_partition(&inst, &chosen);
        assert!(routing.is_structurally_valid(&inst.cs, inst.s));
        assert!(!routing.is_feasible(&inst.cs, &inst.model()));
    }

    #[test]
    fn partition_feasibility_equivalence() {
        // YES instances (all horizontal-compliant).
        for a in [vec![1u64, 1], vec![1, 2, 1, 2, 1, 1], vec![2, 2, 2, 2]] {
            let inst = reduction_instance(&a, 2);
            assert!(inst.horizontal_headroom_ok());
            assert!(partition_exists(&a).is_some());
            assert!(reduction_feasible(&inst), "feasible expected for {a:?}");
        }
        // NO instances.
        for a in [vec![1u64, 2], vec![2, 2, 2], vec![1, 1, 4]] {
            let inst = reduction_instance(&a, 2);
            assert!(inst.horizontal_headroom_ok());
            assert!(partition_exists(&a).is_none());
            assert!(!reduction_feasible(&inst), "infeasible expected for {a:?}");
        }
    }

    #[test]
    fn reduction_works_for_larger_s() {
        // S = 8 ≤ 2(s−1)n = 16.
        let a = [3, 1, 2, 2];
        let inst = reduction_instance(&a, 3);
        assert_eq!(inst.q(), (3 - 1) * 4 + 2);
        assert!(inst.horizontal_headroom_ok());
        let chosen = partition_exists(&a).unwrap();
        let routing = routing_from_partition(&inst, &chosen);
        assert!(routing.is_structurally_valid(&inst.cs, 3));
        assert!(routing.max_paths_per_comm() <= 3);
        assert!(routing.is_feasible(&inst.cs, &inst.model()));
    }

    #[test]
    fn blocking_comms_have_no_routing_freedom() {
        let inst = reduction_instance(&[2, 2], 2);
        for comm in &inst.cs.comms()[2..] {
            assert_eq!(comm.len(), 1);
            assert_eq!(comm.src.v, comm.snk.v);
        }
    }
}
