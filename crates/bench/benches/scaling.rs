//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * heuristic cost versus **mesh size** (8×8 → 24×24) at constant traffic
//!   density;
//! * discrete versus continuous frequency evaluation cost;
//! * the Frank–Wolfe bound's cost per iteration budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pamr_bench::uniform_instance;
use pamr_mesh::Mesh;
use pamr_power::PowerModel;
use pamr_routing::{frank_wolfe, Heuristic, PathRemover, XyImprover};
use std::hint::black_box;

fn mesh_scaling(c: &mut Criterion) {
    let model = PowerModel::kim_horowitz();
    let mut group = c.benchmark_group("mesh_scaling");
    for side in [8usize, 16, 24] {
        let mesh = Mesh::new(side, side);
        // Constant density: ~0.6 communications per core.
        let n = side * side * 6 / 10;
        let cs = uniform_instance(&mesh, n, 100.0, 1500.0, side as u64);
        group.bench_with_input(BenchmarkId::new("PR", side), &cs, |b, cs| {
            b.iter(|| black_box(PathRemover.route(black_box(cs), &model)))
        });
        group.bench_with_input(BenchmarkId::new("XYI", side), &cs, |b, cs| {
            b.iter(|| black_box(XyImprover::default().route(black_box(cs), &model)))
        });
    }
    group.finish();
}

fn frequency_model_ablation(c: &mut Criterion) {
    let mesh = Mesh::new(8, 8);
    let discrete = PowerModel::kim_horowitz();
    let continuous = PowerModel::kim_horowitz_continuous();
    let cs = uniform_instance(&mesh, 40, 100.0, 2500.0, 99);
    let mut group = c.benchmark_group("frequency_model");
    group.bench_function("PR_discrete", |b| {
        b.iter(|| black_box(PathRemover.route(black_box(&cs), &discrete)))
    });
    group.bench_function("PR_continuous", |b| {
        b.iter(|| black_box(PathRemover.route(black_box(&cs), &continuous)))
    });
    group.finish();
}

fn frank_wolfe_budget(c: &mut Criterion) {
    let mesh = Mesh::new(8, 8);
    let model = PowerModel::theory(3.0);
    let cs = uniform_instance(&mesh, 20, 1.0, 5.0, 123);
    let mut group = c.benchmark_group("frank_wolfe");
    for iters in [10usize, 50, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(iters), &iters, |b, &it| {
            b.iter(|| black_box(frank_wolfe(black_box(&cs), &model, it)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = pamr_bench::quick();
    targets = mesh_scaling, frequency_model_ablation, frank_wolfe_budget
}
criterion_main!(benches);
