//! Packet-simulator throughput: events processed per second as the horizon
//! and the flow count grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pamr_bench::{mesh8, model, uniform_instance};
use pamr_nocsim::{simulate, SimConfig};
use pamr_routing::{Heuristic, PathRemover};
use std::hint::black_box;

fn nocsim_throughput(c: &mut Criterion) {
    let mesh = mesh8();
    let model = model();
    let mut group = c.benchmark_group("nocsim");
    for n in [10usize, 40] {
        let cs = uniform_instance(&mesh, n, 100.0, 1500.0, 17 + n as u64);
        let routing = PathRemover.route(&cs, &model);
        for horizon in [100.0f64, 400.0] {
            let cfg = SimConfig {
                horizon_us: horizon,
                packet_bits: 512.0,
            };
            // Approximate packet count for throughput accounting.
            let packets: u64 = cs
                .comms()
                .iter()
                .map(|cm| (cm.weight * horizon / cfg.packet_bits) as u64)
                .sum();
            group.throughput(Throughput::Elements(packets));
            group.bench_with_input(
                BenchmarkId::new(format!("flows{n}"), format!("h{horizon}")),
                &cfg,
                |b, cfg| b.iter(|| black_box(simulate(&cs, &routing, &model, cfg))),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = pamr_bench::quick();
    targets = nocsim_throughput
}
criterion_main!(benches);
