//! Theorem 1 / Lemma 2 bench: cost of building and evaluating the Section 4
//! worst-case constructions as the mesh grows (their *values* are printed by
//! `cargo run -p pamr-sim --release --bin theory`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pamr_power::PowerModel;
use pamr_theory::{fig4_pattern, lemma2_ratio, manhattan_path_count};
use std::hint::black_box;

fn theory(c: &mut Criterion) {
    let model = PowerModel::theory(3.0);
    let mut group = c.benchmark_group("theory");
    for p_prime in [4usize, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("fig4_pattern", p_prime),
            &p_prime,
            |b, &pp| {
                b.iter(|| {
                    let pat = fig4_pattern(black_box(pp), 1.0);
                    black_box(pat.power(&model))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("lemma2_ratio", p_prime),
            &p_prime,
            |b, &pp| b.iter(|| black_box(lemma2_ratio(black_box(pp), &model))),
        );
    }
    group.bench_function("lemma1_count_64x64", |b| {
        b.iter(|| black_box(manhattan_path_count(black_box(64), black_box(64))))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = pamr_bench::quick();
    targets = theory
}
criterion_main!(benches);
