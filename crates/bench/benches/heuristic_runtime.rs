//! §6.4 runtime claim: "the solution is obtained in 24 ms for XYI, and in
//! 38 ms for PR" (authors' hardware). This bench times each policy on
//! campaign-distribution instances (8×8 CMP, mixed weights).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pamr_bench::{mesh8, model, uniform_instance};
use pamr_routing::HeuristicKind;
use std::hint::black_box;

fn heuristic_runtime(c: &mut Criterion) {
    let mesh = mesh8();
    let model = model();
    let mut group = c.benchmark_group("heuristic_runtime");
    for n in [20usize, 40, 80] {
        let cs = uniform_instance(&mesh, n, 100.0, 2500.0, 0xBEEF + n as u64);
        for kind in HeuristicKind::ALL {
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &cs, |b, cs| {
                b.iter(|| black_box(kind.route(black_box(cs), &model)))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = pamr_bench::quick();
    targets = heuristic_runtime
}
criterion_main!(benches);
