//! `pamr-bench` — the campaign benchmark runner behind the CI `bench` lane.
//!
//! Measures the wall time of the §6 figure campaigns twice — once on a
//! single worker thread (the sequential baseline) and once on the full
//! work-pool — and emits a machine-readable `BENCH_summary.json` so the
//! perf trajectory is tracked from one PR to the next.
//!
//! ```text
//! pamr-bench run [--profile smoke|full] [--trials N] [--seed S] [--out FILE]
//! pamr-bench check --baseline FILE --current FILE [--max-ratio R]
//! pamr-bench shard [--shards N] [--trials T] [--seed S] [--pamr PATH] [--out FILE]
//! pamr-bench pr  [--instances N] [--comms N] [--repeats R] [--seed S] [--out FILE]
//! pamr-bench xyi [--instances N] [--comms N] [--repeats R] [--seed S] [--out FILE]
//! pamr-bench ig  [--instances N] [--comms N] [--repeats R] [--seed S] [--out FILE]
//! pamr-bench serve [--comms N] [--repeats R] [--seed S] [--out FILE]
//! pamr-bench precompute [--instances N] [--comms N] [--repeats R] [--seed S] [--out FILE]
//! pamr-bench scaling [--profile smoke|full|serve] [--seed S] [--out FILE] [--check-only]
//! pamr-bench frontier [--comms N] [--segments N] [--split S] [--repeats R] [--seed S] [--out FILE]
//! ```
//!
//! `run` executes the campaigns and writes the report; `check` compares a
//! fresh report against a committed baseline and exits non-zero when the
//! parallel wall time regressed by more than `--max-ratio` (default 2.0) —
//! lenient enough to absorb runner-to-runner noise, tight enough to catch
//! a genuine hot-path regression. `shard` times the multi-process lane:
//! one `pamr shard 0/1` process versus N concurrent `pamr shard i/N`
//! processes plus the `pamr merge` step, verifying on the way that both
//! pipelines print byte-identical §6.4 reports. `pr`, `xyi` and `ig` are
//! the engine lanes: each times a rewritten improvement loop (banded
//! Path-Remover, queue-driven XY improver, indexed Improved greedy)
//! against its full-scan oracle (`pr::reference` / `xyi::reference` /
//! `ig::reference`) on campaign-distribution instances, cross-checks that
//! both produce identical routings **before** timing, and records the
//! per-instance speedup in the matching section of `BENCH_summary.json`
//! (merging into an existing report when one is present); `run` records a
//! smaller version of every lane. `serve` is the daemon lane: per-request
//! latency of `add_comm` against a resident `RoutingSession` (bounded
//! incremental repair) versus the stateless alternative of re-routing the
//! whole live set from scratch on every request. `precompute` is the
//! two-phase lane: the campaign trial loop with the shared
//! precompute/customize split (interned per-endpoint tables) versus the
//! literal rebuild-per-trial path, cross-checked bit-identical first.
//! `scaling` is the large-mesh lane: each optimized engine timed over a
//! mesh-size × comm-count grid (8×8/80 up to 256×256/10⁵ under `--profile
//! full`) of *length-targeted* local traffic, cross-checked bit-identical
//! against the full-scan oracles on the small points first, with a log–log
//! least-squares exponent fit per engine and a large-mesh `pamr serve`
//! incremental-mutation latency probe recorded alongside. The strongly
//! superlinear engines are capped (logged, recorded as `null`) above
//! [`SCALING_PR_MAX_COMMS`] / [`SCALING_XYI_MAX_COMMS`]; the near-linear
//! IG and the serve probe cover the top of the grid; `--profile serve`
//! skips the grid entirely and records only the 256×256/10⁴ serve probe
//! (the sub-100 ms incremental re-route figure). (The Criterion
//! target `crates/bench/benches/scaling.rs` is a different, smaller
//! ablation — heuristic cost vs mesh side at constant density — kept under
//! the same name for history; this lane is the grid with fits.) `frontier`
//! is the bi-objective lane: the pooled ε-constraint power × latency sweep
//! behind `pamr frontier` (per-segment fan-out + dominance-filtering
//! merge) versus the sequential reference solver, cross-checked to the
//! exact same Pareto set before timing.

use pamr_routing::{
    frontier_points, EngineConfig, FrontierProblem, Heuristic as _, HeuristicKind, ImprovedGreedy,
    MeshPrecompute, PathRemover, ReferenceImprovedGreedy, ReferencePathRemover,
    ReferenceXyImprover, RouteScratch, RoutingSession, SessionConfig, SimpleGreedy, XyImprover,
};
use pamr_sim::experiments::{fig7, fig8, fig9, Experiment};
use pamr_sim::{Campaign, FrontierReport, ShardSpec};
use serde::{Deserialize, Serialize};
use std::process::Command;
use std::time::Instant;

/// Per-figure measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FigureBench {
    /// Figure id (`fig7` / `fig8` / `fig9`).
    id: String,
    /// Total instances routed per pass (sweep points × trials).
    instances: usize,
    /// Wall time of the 1-thread pass, milliseconds.
    wall_ms_seq: f64,
    /// Wall time of the N-thread pass, milliseconds.
    wall_ms_par: f64,
    /// `wall_ms_seq / wall_ms_par`.
    speedup: f64,
    /// Instances per second of the parallel pass.
    trials_per_sec: f64,
}

/// One engine lane of `BENCH_summary.json` (the `pr` / `xyi` / `ig`
/// sections): a rewritten improvement loop timed against its full-scan
/// oracle.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct EngineBench {
    /// Distinct campaign-distribution instances timed.
    instances: usize,
    /// Communications per instance.
    comms: usize,
    /// Timing repetitions over the instance set.
    repeats: usize,
    /// Master seed of the instance draws.
    seed: u64,
    /// Mean per-instance runtime of the rewritten engine, milliseconds
    /// (banded PR, queue-driven XYI, indexed IG).
    fast_ms: f64,
    /// Mean per-instance runtime of the full-scan oracle, milliseconds.
    reference_ms: f64,
    /// `reference_ms / fast_ms`.
    speedup: f64,
    /// Both engines produced identical routings on every instance.
    identical: bool,
}

/// The three rewritten-engine lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EngineLane {
    /// Banded Path-Remover vs `pr::reference`.
    Pr,
    /// Queue-driven XY improver vs `xyi::reference`.
    Xyi,
    /// Indexed Improved greedy vs `ig::reference`.
    Ig,
}

impl EngineLane {
    fn name(self) -> &'static str {
        match self {
            EngineLane::Pr => "pr",
            EngineLane::Xyi => "xyi",
            EngineLane::Ig => "ig",
        }
    }
}

/// Times one rewritten engine against its full-scan oracle on 8×8
/// campaign-distribution instances (the §6.2 mixed-weight regime), first
/// cross-checking that every routing is identical — the lane refuses to
/// time engines that disagree.
fn measure_engine(
    lane: EngineLane,
    instances: usize,
    comms: usize,
    repeats: usize,
    seed: u64,
) -> EngineBench {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mesh = pamr_bench::mesh8();
    let model = pamr_bench::model();
    let sets: Vec<_> = (0..instances)
        .map(|i| {
            let mut rng = SmallRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
            pamr_workload::UniformWorkload::new(comms, 100.0, 2500.0).generate(&mesh, &mut rng)
        })
        .collect();
    let mut scratch = RouteScratch::new();
    // Warm-up + differential cross-check.
    let mut identical = true;
    for cs in &sets {
        identical &= match lane {
            EngineLane::Pr => {
                PathRemover.try_route_banded_with(cs, &model, &mut scratch)
                    == ReferencePathRemover.try_route_with(cs, &model, &mut scratch)
            }
            EngineLane::Xyi => {
                XyImprover::default().route_queued_with(cs, &model, &mut scratch)
                    == ReferenceXyImprover::default().route_with(cs, &model, &mut scratch)
            }
            EngineLane::Ig => {
                ImprovedGreedy::default().route_indexed_with(cs, &model, &mut scratch)
                    == ReferenceImprovedGreedy::default().route_with(cs, &model, &mut scratch)
            }
        };
    }
    assert!(
        identical,
        "{} engine diverged from its full-scan oracle",
        lane.name()
    );
    let mut timed = |f: &dyn Fn(&pamr_routing::CommSet, &mut RouteScratch)| -> f64 {
        let start = Instant::now();
        for _ in 0..repeats {
            for cs in &sets {
                f(cs, &mut scratch);
            }
        }
        start.elapsed().as_secs_f64() * 1e3 / (repeats * sets.len()) as f64
    };
    let (fast_ms, reference_ms) = match lane {
        EngineLane::Pr => (
            timed(&|cs, scratch| {
                let _ = PathRemover.route_with(cs, &model, scratch);
            }),
            timed(&|cs, scratch| {
                let _ = ReferencePathRemover.route_with(cs, &model, scratch);
            }),
        ),
        EngineLane::Xyi => (
            timed(&|cs, scratch| {
                let _ = XyImprover::default().route_queued_with(cs, &model, scratch);
            }),
            timed(&|cs, scratch| {
                let _ = ReferenceXyImprover::default().route_with(cs, &model, scratch);
            }),
        ),
        EngineLane::Ig => (
            timed(&|cs, scratch| {
                let _ = ImprovedGreedy::default().route_indexed_with(cs, &model, scratch);
            }),
            timed(&|cs, scratch| {
                let _ = ReferenceImprovedGreedy::default().route_with(cs, &model, scratch);
            }),
        ),
    };
    EngineBench {
        instances,
        comms,
        repeats,
        seed,
        fast_ms,
        reference_ms,
        speedup: reference_ms / fast_ms,
        identical,
    }
}

/// The `precompute` lane of `BENCH_summary.json`: the shared
/// precompute/customize split versus the literal rebuild-per-trial path.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PrecomputeBench {
    /// Campaign-style trials timed per pass.
    instances: usize,
    /// Communications per instance.
    comms: usize,
    /// Timing repetitions over the trial set.
    repeats: usize,
    /// Master seed of the instance draws.
    seed: u64,
    /// Mean per-trial runtime with the shared precompute (the all-`Live`
    /// [`EngineConfig`], the production default), milliseconds.
    cached_ms: f64,
    /// Mean per-trial runtime rebuilding bands, row intervals and seed
    /// paths from scratch every call (`Reference` precompute engine), ms.
    rebuild_ms: f64,
    /// `rebuild_ms / cached_ms`.
    speedup: f64,
    /// Both implementations produced identical routings on every trial.
    identical: bool,
}

/// Times the IG-heavy campaign trial — the §5.2 greedy family (SG then
/// indexed IG) over §6.2 uniform 80-communication instances — once with
/// the shared precompute/customize split and once with literal per-call
/// rebuilds, cross-checking bit-identical routings first.
///
/// The greedy family is the precompute's best customer: SG consumes the
/// cached decreasing-weight order, and IG additionally consumes the
/// interned bands (ideal sharing + min-load index) and the tabulated
/// per-level cost ladder. The rebuild pass is the literal pre-split path —
/// fresh bands, fresh sort, per-query power-fit evaluation — so the ratio
/// is the split's end-to-end campaign-level payoff on sweeps whose
/// per-trial time IG dominates.
fn measure_precompute(
    instances: usize,
    comms: usize,
    repeats: usize,
    seed: u64,
) -> PrecomputeBench {
    let mesh = pamr_bench::mesh8();
    let model = pamr_bench::model();
    let sets: Vec<_> = (0..instances)
        .map(|i| {
            pamr_bench::uniform_instance(
                &mesh,
                comms,
                100.0,
                2500.0,
                seed ^ (i as u64).wrapping_mul(0x9E37_79B9),
            )
        })
        .collect();
    // One IG-heavy campaign trial: the greedy family over one instance.
    let trial = |cs: &pamr_routing::CommSet, scratch: &mut RouteScratch| {
        let _ = SimpleGreedy::default().route_with(cs, &model, scratch);
        let _ = ImprovedGreedy::default().route_indexed_with(cs, &model, scratch);
    };
    // Differential cross-check before timing: identical routings under
    // both engine selections, per instance.
    let cached = EngineConfig::LIVE;
    let rebuild = EngineConfig::LIVE.with_precompute(pamr_routing::EngineSel::Reference);
    let outcomes = |engine: EngineConfig| {
        let mut scratch = RouteScratch::with_engine(engine);
        sets.iter()
            .map(|cs| {
                (
                    SimpleGreedy::default().route_with(cs, &model, &mut scratch),
                    ImprovedGreedy::default().route_indexed_with(cs, &model, &mut scratch),
                )
            })
            .collect::<Vec<_>>()
    };
    let identical = outcomes(cached) == outcomes(rebuild);
    assert!(
        identical,
        "cached tables changed a routing — the precompute lane refuses to time"
    );
    // One shared precompute, as `Summary::run` builds for a whole campaign:
    // on the 8×8 campaign mesh it saturates after a few trials (≤ 4096
    // distinct pairs) and then serves the sweep's remaining ~10⁵ trials, so
    // the steady state is what "campaign-level" means here.
    let shared = std::sync::Arc::new(MeshPrecompute::new(mesh));
    let timed = |engine: EngineConfig| -> f64 {
        let mut scratch = RouteScratch::with_engine(engine);
        if !engine.precompute.is_reference() {
            scratch.attach_precompute(std::sync::Arc::clone(&shared));
        }
        // Untimed warm pass for *both* engine selections: it saturates the
        // cached pass's interner (the campaign steady state) and warms
        // caches and branch predictors equally for the rebuild pass.
        for cs in &sets {
            trial(cs, &mut scratch);
        }
        let start = Instant::now();
        for _ in 0..repeats {
            for cs in &sets {
                trial(cs, &mut scratch);
            }
        }
        start.elapsed().as_secs_f64() * 1e3 / (repeats * sets.len()) as f64
    };
    let cached_ms = timed(cached);
    let rebuild_ms = timed(rebuild);
    PrecomputeBench {
        instances,
        comms,
        repeats,
        seed,
        cached_ms,
        rebuild_ms,
        speedup: rebuild_ms / cached_ms,
        identical,
    }
}

/// The `frontier` lane of `BENCH_summary.json`: the pooled bi-objective
/// power × latency sweep versus the sequential reference solver.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FrontierBench {
    /// Communications in the swept instance.
    comms: usize,
    /// ε-constraint segments (latency budgets) swept.
    segments: usize,
    /// Path bound of the FW-MP candidate (0 sweeps the 1-MP portfolio
    /// only).
    split: usize,
    /// Timing repetitions over the sweep.
    repeats: usize,
    /// Master seed of the instance draw.
    seed: u64,
    /// Mean sweep runtime of the sequential reference solver
    /// (`frontier_points`), milliseconds.
    sequential_ms: f64,
    /// Mean sweep runtime of the pooled per-segment fan-out + merge
    /// pipeline (the `pamr frontier` implementation), milliseconds.
    pooled_ms: f64,
    /// `sequential_ms / pooled_ms`.
    speedup: f64,
    /// Pareto points on the computed frontier.
    pareto_points: usize,
    /// The pooled pipeline produced the sequential solver's exact Pareto
    /// set.
    identical: bool,
}

/// Times the frontier lane: the ε-constraint sweep over an 8×8
/// campaign-feasible instance, once through the sequential reference
/// solver and once through the pooled partial/merge pipeline behind
/// `pamr frontier`, cross-checked to the exact same Pareto set first.
///
/// The 100–800 weight regime keeps the instance feasible at 80
/// communications (see [`measure_serve`]) — an infeasible instance has an
/// empty frontier and the lane would time nothing.
fn measure_frontier(
    comms: usize,
    segments: usize,
    split: usize,
    repeats: usize,
    seed: u64,
) -> FrontierBench {
    let mesh = pamr_bench::mesh8();
    let model = pamr_bench::model();
    let cs = pamr_bench::uniform_instance(&mesh, comms, 100.0, 800.0, seed);
    let problem = FrontierProblem {
        cs: &cs,
        model: &model,
        segments,
        split,
    };
    // Differential cross-check before timing: the pooled pipeline must
    // reproduce the sequential solver's Pareto set exactly.
    let reference = frontier_points(&problem);
    let report = FrontierReport::compute(&cs, &model, segments, split);
    let identical = report.pareto == reference;
    assert!(
        identical,
        "pooled frontier diverged from the sequential solver"
    );
    assert!(
        !reference.is_empty(),
        "frontier lane instance is infeasible — nothing to time"
    );
    let timed = |f: &dyn Fn()| -> f64 {
        f(); // warm-up
        let start = Instant::now();
        for _ in 0..repeats {
            f();
        }
        start.elapsed().as_secs_f64() * 1e3 / repeats as f64
    };
    let sequential_ms = timed(&|| {
        let _ = frontier_points(&problem);
    });
    let pooled_ms = timed(&|| {
        let _ = FrontierReport::compute(&cs, &model, segments, split);
    });
    FrontierBench {
        comms,
        segments,
        split,
        repeats,
        seed,
        sequential_ms,
        pooled_ms,
        speedup: sequential_ms / pooled_ms,
        pareto_points: reference.len(),
        identical,
    }
}

/// The `serve` lane of `BENCH_summary.json`: per-request `add_comm`
/// latency of the resident session versus a stateless from-scratch
/// re-route of the live set on every request.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServeBench {
    /// Requests per pass (= live communications after the last one).
    requests: usize,
    /// Timing repetitions over the request script.
    repeats: usize,
    /// Master seed of the instance draw.
    seed: u64,
    /// Mean per-request latency with the resident session (bounded
    /// incremental repair), milliseconds.
    incremental_ms_per_req: f64,
    /// Mean per-request latency re-routing the whole live prefix from
    /// scratch with the same heuristic, milliseconds.
    scratch_ms_per_req: f64,
    /// `scratch_ms_per_req / incremental_ms_per_req`.
    speedup: f64,
}

/// Times the serve lane: the same `requests`-long `add_comm` script is
/// answered once by a resident [`RoutingSession`] (the `pamr serve`
/// implementation) and once by batch-re-routing the live prefix from
/// scratch on every request (what a stateless daemon would do).
///
/// The draw uses the 100–800 weight regime: at 80 communications it keeps
/// the 8×8 platform feasible (max link load ≈ 2700 of 3500), which is the
/// operating point a daemon actually serves. The §6.2 mixed regime
/// (100–2500) is hopelessly infeasible at this count, and an infeasible
/// state forces the session to escalate every request to a full re-route —
/// that measures the escalation path, not incremental repair.
fn measure_serve(requests: usize, repeats: usize, seed: u64) -> ServeBench {
    let mesh = pamr_bench::mesh8();
    let model = pamr_bench::model();
    let cs = pamr_bench::uniform_instance(&mesh, requests, 100.0, 800.0, seed);

    let start = Instant::now();
    for _ in 0..repeats {
        let mut session = RoutingSession::new(mesh, model.clone(), SessionConfig::default());
        for c in cs.comms() {
            session.add_comm(*c);
        }
        assert_eq!(session.len(), requests);
    }
    let incremental_ms_per_req = start.elapsed().as_secs_f64() * 1e3 / (repeats * requests) as f64;

    let mut scratch = RouteScratch::new();
    let start = Instant::now();
    for _ in 0..repeats {
        for i in 1..=requests {
            let prefix = pamr_routing::CommSet::new(mesh, cs.comms()[..i].to_vec());
            let _ = HeuristicKind::Xyi.route_with(&prefix, &model, &mut scratch);
        }
    }
    let scratch_ms_per_req = start.elapsed().as_secs_f64() * 1e3 / (repeats * requests) as f64;

    ServeBench {
        requests,
        repeats,
        seed,
        incremental_ms_per_req,
        scratch_ms_per_req,
        speedup: scratch_ms_per_req / incremental_ms_per_req,
    }
}

/// One grid point of the `scaling` lane: every optimized engine timed on
/// one mesh-size × comm-count instance of length-targeted local traffic.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ScalingPoint {
    /// Mesh rows.
    rows: usize,
    /// Mesh columns.
    cols: usize,
    /// Communications in the instance.
    comms: usize,
    /// The optimized engines were cross-checked bit-identical against the
    /// full-scan oracles at this point (skipped above the oracle cutoff,
    /// where the references' `O(p·q)` scans are prohibitively slow).
    crosschecked: bool,
    /// Timing repetitions (more on the small points to damp noise).
    repeats: usize,
    /// Mean banded-PR runtime, milliseconds. `None` above
    /// [`SCALING_PR_MAX_COMMS`] — PR is the most superlinear engine, and
    /// timing it at the top of the full grid costs hours, not minutes.
    pr_ms: Option<f64>,
    /// Mean queued-XYI runtime, milliseconds. `None` above
    /// [`SCALING_XYI_MAX_COMMS`], same reason at a milder exponent.
    xyi_ms: Option<f64>,
    /// Mean indexed-IG runtime, milliseconds (near-linear; timed at every
    /// grid point).
    ig_ms: f64,
}

/// Least-squares log–log fit of one engine's runtime over the grid: the
/// measured asymptotic exponent of runtime vs communication count (mesh
/// area scales proportionally along the grid, so one scale parameter
/// suffices).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ScalingFit {
    /// Engine name (`pr` / `xyi` / `ig`).
    engine: String,
    /// Slope of `ln(runtime)` vs `ln(comms)` — 1.0 is linear scaling, 2.0
    /// quadratic.
    exponent: f64,
    /// Coefficient of determination of the fit.
    r2: f64,
}

/// The large-mesh `pamr serve` probe of the `scaling` lane: per-mutation
/// latency of incremental re-routing against a resident session.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ScalingServe {
    /// Mesh rows.
    rows: usize,
    /// Mesh columns.
    cols: usize,
    /// Live communications in the resident session.
    comms: usize,
    /// Target Manhattan length of the local traffic.
    path_len: usize,
    /// Timed mutations (each a `remove_comm` + `add_comm` pair; both ops
    /// are measured individually).
    mutations: usize,
    /// Mean per-operation latency, milliseconds.
    mean_mutation_ms: f64,
    /// Worst per-operation latency, milliseconds — the interactive-budget
    /// figure (target: < 100 ms on a 256×256 mesh with 10⁴ communications).
    max_mutation_ms: f64,
    /// Bounded repairs that escalated to a full re-route during the timed
    /// window (escalations measure the batch path, not incremental repair).
    escalations: u64,
}

/// The whole `scaling` lane (`run` does not record it; the focused
/// `pamr-bench scaling` subcommand merges it into `BENCH_summary.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ScalingBench {
    /// Grid profile (`smoke` / `full` / `serve` — the last has no grid
    /// points and no fits, only the 256×256 serve probe).
    profile: String,
    /// Master seed of the instance draws.
    seed: u64,
    /// Target Manhattan length of the grid's local traffic. Uniform
    /// endpoint draws would make every band's link count — and the crossing
    /// indices — grow quadratically with the mesh side; fixed-radius
    /// traffic is the regime where `O(band)` per-operation costs are
    /// independent of mesh size, which is exactly what the lane measures.
    path_len: usize,
    /// The grid, smallest point first.
    points: Vec<ScalingPoint>,
    /// Per-engine asymptotic fits over the grid.
    fits: Vec<ScalingFit>,
    /// The large-mesh incremental-serve probe.
    serve: ScalingServe,
}

/// The whole report (`BENCH_summary.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchReport {
    /// Report format version.
    schema: u32,
    /// Profile name (`smoke` / `full` / `custom`).
    profile: String,
    /// Worker threads of the parallel pass.
    threads: usize,
    /// Hardware threads the recording machine advertises
    /// (`available_parallelism`): a committed baseline from a 1-core
    /// container is recognisable at a glance, and the CI `bench` job's
    /// baseline-refresh artifact records the capacity it was measured on.
    nproc: usize,
    /// Trials per sweep point.
    trials: usize,
    /// Master seed.
    seed: u64,
    /// Per-figure measurements.
    figures: Vec<FigureBench>,
    /// Sum of the sequential passes, milliseconds.
    total_wall_ms_seq: f64,
    /// Sum of the parallel passes, milliseconds.
    total_wall_ms_par: f64,
    /// Overall sequential/parallel speedup.
    speedup: f64,
    /// The banded-vs-reference Path-Remover lane. `run` and the `pr`
    /// subcommand fill it; it is `Option` only so a lane-less report
    /// remains representable (the vendored serde has no field defaulting,
    /// so older-schema files without the fields do not deserialize at all —
    /// `check` requires matching schemas anyway).
    pr: Option<EngineBench>,
    /// The queued-vs-reference XY-improver lane (`run` / `xyi`).
    xyi: Option<EngineBench>,
    /// The indexed-vs-reference Improved-greedy lane (`run` / `ig`).
    ig: Option<EngineBench>,
    /// The incremental-vs-stateless daemon lane (`run` / `serve`).
    serve: Option<ServeBench>,
    /// The shared-precompute-vs-rebuild lane (`run` / `precompute`).
    precompute: Option<PrecomputeBench>,
    /// The large-mesh grid lane (`scaling` subcommand only).
    scaling: Option<ScalingBench>,
    /// The pooled-vs-sequential bi-objective sweep lane (`run` /
    /// `frontier`).
    frontier: Option<FrontierBench>,
}

/// Hardware threads of this machine, as recorded in the report.
fn nproc() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  pamr-bench run [--profile smoke|full] [--trials N] [--seed S] [--out FILE]\n  \
         pamr-bench check --baseline FILE --current FILE [--max-ratio R]\n  \
         pamr-bench shard [--shards N] [--trials T] [--seed S] [--pamr PATH] [--out FILE]\n  \
         pamr-bench pr|xyi|ig [--instances N] [--comms N] [--repeats R] [--seed S] [--out FILE]\n  \
         pamr-bench serve [--comms N] [--repeats R] [--seed S] [--out FILE]\n  \
         pamr-bench precompute [--instances N] [--comms N] [--repeats R] [--seed S] [--out FILE]\n  \
         pamr-bench scaling [--profile smoke|full|serve] [--seed S] [--out FILE] [--check-only]\n  \
         pamr-bench frontier [--comms N] [--segments N] [--split S] [--repeats R] [--seed S] [--out FILE]"
    );
    std::process::exit(2);
}

fn opt(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("shard") => cmd_shard(&args[1..]),
        Some("pr") => cmd_engine(EngineLane::Pr, &args[1..]),
        Some("xyi") => cmd_engine(EngineLane::Xyi, &args[1..]),
        Some("ig") => cmd_engine(EngineLane::Ig, &args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("precompute") => cmd_precompute(&args[1..]),
        Some("scaling") => cmd_scaling(&args[1..]),
        Some("frontier") => cmd_frontier(&args[1..]),
        _ => usage(),
    }
}

/// Runs one figure group at a fixed thread count, returning the wall time.
fn time_group(exps: &[Experiment], trials: usize, seed: u64, threads: usize) -> f64 {
    rayon::set_num_threads(threads);
    let mesh = pamr_sim::paper_mesh();
    let model = pamr_sim::paper_model();
    let campaign = Campaign {
        mesh: &mesh,
        model: &model,
        trials,
        seed,
        shard: ShardSpec::FULL,
        pre: None,
        engine: EngineConfig::LIVE,
    };
    let start = Instant::now();
    for exp in exps {
        let res = campaign.run_experiment(exp);
        assert!(
            res.points.iter().all(|(_, s)| s.trials == trials),
            "campaign dropped trials"
        );
    }
    rayon::set_num_threads(0);
    start.elapsed().as_secs_f64() * 1e3
}

fn cmd_run(args: &[String]) {
    let profile = opt(args, "--profile").unwrap_or_else(|| "smoke".into());
    let mut trials = match profile.as_str() {
        "smoke" => 10,
        "full" => 200,
        other => {
            eprintln!("unknown profile {other:?} (smoke|full)");
            std::process::exit(2);
        }
    };
    if let Some(t) = opt(args, "--trials") {
        trials = t.parse().expect("--trials needs a positive integer");
        assert!(trials > 0, "--trials must be positive");
    }
    let seed: u64 = opt(args, "--seed")
        .map(|s| s.parse().expect("--seed needs an integer"))
        .unwrap_or(0xC0FFEE);
    let out = opt(args, "--out").unwrap_or_else(|| "BENCH_summary.json".into());

    let threads = rayon::current_num_threads();
    eprintln!(
        "pamr-bench: profile {profile}, {trials} trials/point, seq (1 thread) vs par ({threads} threads)"
    );

    let groups: [(&str, Vec<Experiment>); 3] =
        [("fig7", fig7()), ("fig8", fig8()), ("fig9", fig9())];
    let mut figures = Vec::new();
    for (id, exps) in &groups {
        let instances: usize = exps.iter().map(|e| e.points.len() * trials).sum();
        let wall_ms_seq = time_group(exps, trials, seed, 1);
        let wall_ms_par = time_group(exps, trials, seed, 0);
        let fig = FigureBench {
            id: (*id).to_string(),
            instances,
            wall_ms_seq,
            wall_ms_par,
            speedup: wall_ms_seq / wall_ms_par,
            trials_per_sec: instances as f64 / (wall_ms_par / 1e3),
        };
        eprintln!(
            "  {id}: seq {:.0} ms, par {:.0} ms, speedup {:.2}x, {:.0} instances/s",
            fig.wall_ms_seq, fig.wall_ms_par, fig.speedup, fig.trials_per_sec
        );
        figures.push(fig);
    }

    // The engine lanes: small here (the focused `pamr-bench pr|xyi|ig`
    // subcommands run bigger samples), but always recorded so every
    // BENCH_summary.json tracks the rewritten-vs-reference speedups.
    let mut lanes = [EngineLane::Pr, EngineLane::Xyi, EngineLane::Ig]
        .into_iter()
        .map(|lane| {
            let b = measure_engine(lane, 12, 80, 2, seed);
            eprintln!(
                "  {}: fast {:.2} ms/inst, reference {:.2} ms/inst, speedup {:.2}x",
                lane.name(),
                b.fast_ms,
                b.reference_ms,
                b.speedup
            );
            b
        });
    let (pr, xyi, ig) = (
        lanes.next().unwrap(),
        lanes.next().unwrap(),
        lanes.next().unwrap(),
    );
    let serve = measure_serve(80, 2, seed);
    eprintln!(
        "  serve: incremental {:.3} ms/req, from-scratch {:.3} ms/req, speedup {:.1}x",
        serve.incremental_ms_per_req, serve.scratch_ms_per_req, serve.speedup
    );
    let pre = measure_precompute(12, 80, 2, seed);
    eprintln!(
        "  precompute: cached {:.2} ms/trial, rebuild {:.2} ms/trial, speedup {:.2}x",
        pre.cached_ms, pre.rebuild_ms, pre.speedup
    );
    let fr = measure_frontier(80, 16, 2, 2, seed);
    eprintln!(
        "  frontier: sequential {:.2} ms/sweep, pooled {:.2} ms/sweep, speedup {:.2}x, \
         {} Pareto point(s)",
        fr.sequential_ms, fr.pooled_ms, fr.speedup, fr.pareto_points
    );

    let total_wall_ms_seq: f64 = figures.iter().map(|f| f.wall_ms_seq).sum();
    let total_wall_ms_par: f64 = figures.iter().map(|f| f.wall_ms_par).sum();
    let report = BenchReport {
        schema: 7,
        profile,
        threads,
        nproc: nproc(),
        trials,
        seed,
        figures,
        total_wall_ms_seq,
        total_wall_ms_par,
        speedup: total_wall_ms_seq / total_wall_ms_par,
        pr: Some(pr),
        xyi: Some(xyi),
        ig: Some(ig),
        serve: Some(serve),
        precompute: Some(pre),
        scaling: None,
        frontier: Some(fr),
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("{json}");
    eprintln!(
        "pamr-bench: total seq {total_wall_ms_seq:.0} ms, par {total_wall_ms_par:.0} ms, \
         speedup {:.2}x → {out}",
        report.speedup
    );
}

fn cmd_check(args: &[String]) {
    let baseline_path = opt(args, "--baseline").unwrap_or_else(|| usage());
    let current_path = opt(args, "--current").unwrap_or_else(|| usage());
    let max_ratio: f64 = opt(args, "--max-ratio")
        .map(|s| s.parse().expect("--max-ratio needs a number"))
        .unwrap_or(2.0);
    let load = |path: &str| -> BenchReport {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"))
    };
    let baseline = load(&baseline_path);
    let current = load(&current_path);
    assert_eq!(
        baseline.schema, current.schema,
        "baseline and current use different report schemas"
    );
    assert_eq!(
        baseline.profile, current.profile,
        "baseline and current measure different profiles"
    );
    assert_eq!(
        baseline.trials, current.trials,
        "baseline and current measure different trial budgets \
         (refresh the committed baseline after changing the profile)"
    );
    assert_eq!(
        baseline.figures.iter().map(|f| &f.id).collect::<Vec<_>>(),
        current.figures.iter().map(|f| &f.id).collect::<Vec<_>>(),
        "baseline and current measure different figure sets"
    );
    let ratio = current.total_wall_ms_par / baseline.total_wall_ms_par;
    println!(
        "bench check: baseline {:.0} ms, current {:.0} ms, ratio {ratio:.2} (limit {max_ratio:.2})",
        baseline.total_wall_ms_par, current.total_wall_ms_par
    );
    for (b, c) in baseline.figures.iter().zip(&current.figures) {
        println!(
            "  {}: {:.0} ms → {:.0} ms ({:.2}x)",
            c.id,
            b.wall_ms_par,
            c.wall_ms_par,
            c.wall_ms_par / b.wall_ms_par
        );
    }
    for (name, b, c) in [
        ("pr", &baseline.pr, &current.pr),
        ("xyi", &baseline.xyi, &current.xyi),
        ("ig", &baseline.ig, &current.ig),
    ] {
        if let (Some(b), Some(c)) = (b, c) {
            println!(
                "  {name} engine: {:.2}x → {:.2}x rewritten-vs-reference speedup",
                b.speedup, c.speedup
            );
        }
    }
    if let (Some(b), Some(c)) = (&baseline.serve, &current.serve) {
        println!(
            "  serve lane: {:.1}x → {:.1}x incremental-vs-scratch speedup",
            b.speedup, c.speedup
        );
    }
    if let (Some(b), Some(c)) = (&baseline.precompute, &current.precompute) {
        println!(
            "  precompute lane: {:.2}x → {:.2}x cached-vs-rebuild speedup",
            b.speedup, c.speedup
        );
    }
    if let (Some(b), Some(c)) = (&baseline.frontier, &current.frontier) {
        println!(
            "  frontier lane: {:.2}x → {:.2}x pooled-vs-sequential speedup \
             ({} → {} Pareto point(s))",
            b.speedup, c.speedup, b.pareto_points, c.pareto_points
        );
    }
    if let (Some(b), Some(c)) = (&baseline.scaling, &current.scaling) {
        for (bf, cf) in b.fits.iter().zip(&c.fits) {
            println!(
                "  scaling {}: exponent {:.2} → {:.2}",
                cf.engine, bf.exponent, cf.exponent
            );
        }
        println!(
            "  scaling serve: max mutation {:.2} ms → {:.2} ms",
            b.serve.max_mutation_ms, c.serve.max_mutation_ms
        );
    }
    if ratio > max_ratio {
        eprintln!(
            "REGRESSION: parallel campaign wall time grew {ratio:.2}x over the committed \
             baseline (limit {max_ratio:.2}x)"
        );
        std::process::exit(1);
    }
    println!("bench check: OK");
}

/// One focused engine lane (`pamr-bench pr|xyi|ig`): a bigger sample of
/// the rewritten-vs-reference measurement `run` records, written into (or
/// merged into) `BENCH_summary.json`.
fn cmd_engine(lane: EngineLane, args: &[String]) {
    let instances: usize = opt(args, "--instances")
        .map(|s| s.parse().expect("--instances needs a positive integer"))
        .unwrap_or(40);
    assert!(instances > 0, "--instances must be positive");
    let comms: usize = opt(args, "--comms")
        .map(|s| s.parse().expect("--comms needs a positive integer"))
        .unwrap_or(80);
    assert!(comms > 0, "--comms must be positive");
    let repeats: usize = opt(args, "--repeats")
        .map(|s| s.parse().expect("--repeats needs a positive integer"))
        .unwrap_or(3);
    assert!(repeats > 0, "--repeats must be positive");
    let seed: u64 = opt(args, "--seed")
        .map(|s| s.parse().expect("--seed needs an integer"))
        .unwrap_or(0xC0FFEE);
    let out = opt(args, "--out").unwrap_or_else(|| "BENCH_summary.json".into());
    let name = lane.name();

    eprintln!(
        "pamr-bench {name}: {instances} instances × {comms} comms × {repeats} repeat(s), \
         rewritten engine vs full-scan reference"
    );
    let bench = measure_engine(lane, instances, comms, repeats, seed);
    eprintln!(
        "pamr-bench {name}: fast {:.3} ms/inst, reference {:.3} ms/inst, speedup {:.2}x, \
         routings identical → {out}",
        bench.fast_ms, bench.reference_ms, bench.speedup
    );

    // Merge into an existing report when one is present (preserving the
    // campaign figures a prior `run` recorded); start a fresh lane-only
    // report otherwise. An existing file that does not parse (e.g. an
    // older-schema report, which lacks the lane fields) is replaced,
    // loudly.
    let mut report = std::fs::read_to_string(&out)
        .ok()
        .and_then(|text| match serde_json::from_str::<BenchReport>(&text) {
            Ok(report) => Some(report),
            Err(e) => {
                eprintln!(
                    "pamr-bench {name}: existing {out} does not parse as a bench report \
                     ({e}); replacing it with a {name}-only report"
                );
                None
            }
        })
        .unwrap_or_else(|| empty_report(name, seed));
    match lane {
        EngineLane::Pr => report.pr = Some(bench),
        EngineLane::Xyi => report.xyi = Some(bench),
        EngineLane::Ig => report.ig = Some(bench),
    }
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("{json}");
}

/// A lane-only report skeleton for subcommands that merge into
/// `BENCH_summary.json` when no prior `run` recorded the figures.
fn empty_report(profile: &str, seed: u64) -> BenchReport {
    BenchReport {
        schema: 7,
        profile: profile.into(),
        threads: rayon::current_num_threads(),
        nproc: nproc(),
        trials: 0,
        seed,
        figures: Vec::new(),
        total_wall_ms_seq: 0.0,
        total_wall_ms_par: 0.0,
        speedup: 0.0,
        pr: None,
        xyi: None,
        ig: None,
        serve: None,
        precompute: None,
        scaling: None,
        frontier: None,
    }
}

/// The focused daemon lane (`pamr-bench serve`): a bigger sample of the
/// incremental-vs-stateless measurement `run` records, merged into
/// `BENCH_summary.json` like the engine lanes.
fn cmd_serve(args: &[String]) {
    let requests: usize = opt(args, "--comms")
        .map(|s| s.parse().expect("--comms needs a positive integer"))
        .unwrap_or(80);
    assert!(requests > 0, "--comms must be positive");
    let repeats: usize = opt(args, "--repeats")
        .map(|s| s.parse().expect("--repeats needs a positive integer"))
        .unwrap_or(5);
    assert!(repeats > 0, "--repeats must be positive");
    let seed: u64 = opt(args, "--seed")
        .map(|s| s.parse().expect("--seed needs an integer"))
        .unwrap_or(0xC0FFEE);
    let out = opt(args, "--out").unwrap_or_else(|| "BENCH_summary.json".into());

    eprintln!(
        "pamr-bench serve: {requests} add_comm requests × {repeats} repeat(s), \
         resident session vs from-scratch re-route"
    );
    let bench = measure_serve(requests, repeats, seed);
    eprintln!(
        "pamr-bench serve: incremental {:.3} ms/req, from-scratch {:.3} ms/req, \
         speedup {:.1}x → {out}",
        bench.incremental_ms_per_req, bench.scratch_ms_per_req, bench.speedup
    );

    let mut report = std::fs::read_to_string(&out)
        .ok()
        .and_then(|text| match serde_json::from_str::<BenchReport>(&text) {
            Ok(report) => Some(report),
            Err(e) => {
                eprintln!(
                    "pamr-bench serve: existing {out} does not parse as a bench report \
                     ({e}); replacing it with a serve-only report"
                );
                None
            }
        })
        .unwrap_or_else(|| empty_report("serve", seed));
    report.serve = Some(bench);
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("{json}");
}

/// The focused precompute lane (`pamr-bench precompute`): a bigger sample
/// of the cached-vs-rebuild measurement `run` records, merged into
/// `BENCH_summary.json` like the engine lanes.
fn cmd_precompute(args: &[String]) {
    let instances: usize = opt(args, "--instances")
        .map(|s| s.parse().expect("--instances needs a positive integer"))
        .unwrap_or(40);
    assert!(instances > 0, "--instances must be positive");
    let comms: usize = opt(args, "--comms")
        .map(|s| s.parse().expect("--comms needs a positive integer"))
        .unwrap_or(80);
    assert!(comms > 0, "--comms must be positive");
    let repeats: usize = opt(args, "--repeats")
        .map(|s| s.parse().expect("--repeats needs a positive integer"))
        .unwrap_or(8);
    assert!(repeats > 0, "--repeats must be positive");
    let seed: u64 = opt(args, "--seed")
        .map(|s| s.parse().expect("--seed needs an integer"))
        .unwrap_or(0xC0FFEE);
    let out = opt(args, "--out").unwrap_or_else(|| "BENCH_summary.json".into());

    eprintln!(
        "pamr-bench precompute: {instances} trials × {comms} comms × {repeats} repeat(s), \
         shared precompute vs rebuild-per-trial"
    );
    let bench = measure_precompute(instances, comms, repeats, seed);
    eprintln!(
        "pamr-bench precompute: cached {:.3} ms/trial, rebuild {:.3} ms/trial, \
         speedup {:.2}x, routings identical → {out}",
        bench.cached_ms, bench.rebuild_ms, bench.speedup
    );

    let mut report = std::fs::read_to_string(&out)
        .ok()
        .and_then(|text| match serde_json::from_str::<BenchReport>(&text) {
            Ok(report) => Some(report),
            Err(e) => {
                eprintln!(
                    "pamr-bench precompute: existing {out} does not parse as a bench report \
                     ({e}); replacing it with a precompute-only report"
                );
                None
            }
        })
        .unwrap_or_else(|| empty_report("precompute", seed));
    report.precompute = Some(bench);
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("{json}");
}

/// Target Manhattan length of the scaling lane's local traffic (see
/// [`ScalingBench::path_len`]).
const SCALING_PATH_LEN: usize = 8;

/// Oracle cutoff of the scaling lane: grid points with at most this many
/// cores are cross-checked against the full-scan references before timing.
/// Above it the references' `O(p·q)`-per-step scans dominate the whole run
/// (they are the very cost the optimized engines shed), so the big points
/// ride on the equivalence the small points — and the differential test
/// suite — establish.
const SCALING_ORACLE_CUTOFF: usize = 32 * 32;

/// Largest communication count at which the scaling lane times the banded
/// PR. Its measured exponent is ≈1.9 in the grid's joint comms×area scale,
/// so the 256×256/10⁵ point would take hours per pass; the cap keeps the
/// full profile interactive and is *logged*, never silent — capped points
/// record `None` and the fit uses the sub-grid the engine actually ran.
const SCALING_PR_MAX_COMMS: usize = 20_480;

/// Largest communication count at which the scaling lane times the queued
/// XYI (exponent ≈2.0 in the joint scale; same reasoning as
/// [`SCALING_PR_MAX_COMMS`] one notch later).
const SCALING_XYI_MAX_COMMS: usize = 20_480;

/// Measures one grid point: builds the length-targeted instance,
/// cross-checks the optimized engines against their oracles below the
/// cutoff, then times each optimized engine.
fn measure_scaling_point(
    rows: usize,
    cols: usize,
    comms: usize,
    seed: u64,
    check_only: bool,
) -> ScalingPoint {
    let mesh = pamr_mesh::Mesh::new(rows, cols);
    let model = pamr_bench::model();
    let cs = pamr_bench::length_instance(&mesh, comms, 100.0, 800.0, SCALING_PATH_LEN, seed);
    let mut scratch = RouteScratch::new();
    let crosschecked = rows * cols <= SCALING_ORACLE_CUTOFF;
    if crosschecked {
        assert!(
            PathRemover.try_route_banded_with(&cs, &model, &mut scratch)
                == ReferencePathRemover.try_route_with(&cs, &model, &mut scratch),
            "{rows}×{cols}/{comms}: banded PR diverged from its full-scan oracle"
        );
        assert!(
            XyImprover::default().route_queued_with(&cs, &model, &mut scratch)
                == ReferenceXyImprover::default().route_with(&cs, &model, &mut scratch),
            "{rows}×{cols}/{comms}: queued XYI diverged from its full-scan oracle"
        );
        assert!(
            ImprovedGreedy::default().route_indexed_with(&cs, &model, &mut scratch)
                == ReferenceImprovedGreedy::default().route_with(&cs, &model, &mut scratch),
            "{rows}×{cols}/{comms}: indexed IG diverged from its full-scan oracle"
        );
    }
    if check_only {
        return ScalingPoint {
            rows,
            cols,
            comms,
            crosschecked,
            repeats: 0,
            pr_ms: None,
            xyi_ms: None,
            ig_ms: 0.0,
        };
    }
    // More repetitions on the small points, where a single route is noise.
    let repeats = (2560 / comms).max(1);
    let mut timed = |f: &dyn Fn(&pamr_routing::CommSet, &mut RouteScratch)| -> f64 {
        f(&cs, &mut scratch); // warm-up (grows scratch buffers untimed)
        let start = Instant::now();
        for _ in 0..repeats {
            f(&cs, &mut scratch);
        }
        start.elapsed().as_secs_f64() * 1e3 / repeats as f64
    };
    let pr_ms = (comms <= SCALING_PR_MAX_COMMS).then(|| {
        timed(&|cs, scratch| {
            let _ = PathRemover.route_with(cs, &model, scratch);
        })
    });
    let xyi_ms = (comms <= SCALING_XYI_MAX_COMMS).then(|| {
        timed(&|cs, scratch| {
            let _ = XyImprover::default().route_queued_with(cs, &model, scratch);
        })
    });
    let ig_ms = timed(&|cs, scratch| {
        let _ = ImprovedGreedy::default().route_indexed_with(cs, &model, scratch);
    });
    ScalingPoint {
        rows,
        cols,
        comms,
        crosschecked,
        repeats,
        pr_ms,
        xyi_ms,
        ig_ms,
    }
}

/// Least-squares slope (and r²) of `ln(ms)` vs `ln(comms)` over the grid.
fn scaling_fit(
    engine: &str,
    points: &[ScalingPoint],
    ms_of: fn(&ScalingPoint) -> Option<f64>,
) -> ScalingFit {
    let xy: Vec<(f64, f64)> = points
        .iter()
        .filter_map(|p| ms_of(p).map(|ms| ((p.comms as f64).ln(), ms.ln())))
        .collect();
    let n = xy.len() as f64;
    let (mx, my) = (
        xy.iter().map(|(x, _)| x).sum::<f64>() / n,
        xy.iter().map(|(_, y)| y).sum::<f64>() / n,
    );
    let sxy: f64 = xy.iter().map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xy.iter().map(|(x, _)| (x - mx) * (x - mx)).sum();
    let syy: f64 = xy.iter().map(|(_, y)| (y - my) * (y - my)).sum();
    ScalingFit {
        engine: engine.into(),
        exponent: sxy / sxx,
        r2: if syy == 0.0 {
            1.0
        } else {
            sxy * sxy / (sxx * syy)
        },
    }
}

/// Times the large-mesh incremental-serve probe: a resident session loaded
/// with `comms` local communications, then `mutations` remove/re-add pairs
/// timed per operation.
fn measure_scaling_serve(
    rows: usize,
    cols: usize,
    comms: usize,
    mutations: usize,
    seed: u64,
) -> ScalingServe {
    let mesh = pamr_mesh::Mesh::new(rows, cols);
    let model = pamr_bench::model();
    let cs = pamr_bench::length_instance(&mesh, comms, 100.0, 800.0, SCALING_PATH_LEN, seed);
    let mut session = RoutingSession::new(mesh, model, SessionConfig::default());
    let mut handles: Vec<_> = cs.comms().iter().map(|c| session.add_comm(*c)).collect();
    let escalations_before = session.stats().escalations;
    let (mut total_ms, mut max_ms, mut ops) = (0.0f64, 0.0f64, 0u32);
    let mut timed_op = |f: &mut dyn FnMut()| {
        let start = Instant::now();
        f();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        total_ms += ms;
        max_ms = max_ms.max(ms);
        ops += 1;
    };
    for k in 0..mutations {
        // Deterministic rotation through the live set (coprime stride).
        let idx = (k * 7919) % handles.len();
        let h = handles[idx];
        let mut removed = None;
        timed_op(&mut || removed = session.remove_comm(h));
        let c = removed.expect("handle is live");
        let mut re_added = None;
        timed_op(&mut || re_added = Some(session.add_comm(c)));
        handles[idx] = re_added.expect("just set");
    }
    ScalingServe {
        rows,
        cols,
        comms,
        path_len: SCALING_PATH_LEN,
        mutations,
        mean_mutation_ms: total_ms / ops as f64,
        max_mutation_ms: max_ms,
        escalations: session.stats().escalations - escalations_before,
    }
}

/// The `scaling` lane (`pamr-bench scaling`): the mesh-size × comm-count
/// grid, per-engine asymptotic fits and the large-mesh serve probe, merged
/// into `BENCH_summary.json`. `--check-only` runs only the oracle
/// cross-checks on the sub-cutoff points and writes nothing — the CI
/// determinism job's scaling-smoke gate.
fn cmd_scaling(args: &[String]) {
    let profile = opt(args, "--profile").unwrap_or_else(|| "smoke".into());
    let seed: u64 = opt(args, "--seed")
        .map(|s| s.parse().expect("--seed needs an integer"))
        .unwrap_or(0xC0FFEE);
    let out = opt(args, "--out").unwrap_or_else(|| "BENCH_summary.json".into());
    let check_only = args.iter().any(|a| a == "--check-only");
    // Mesh area and comm count scale together (×4 per step): one scale
    // parameter for the log–log fits.
    let grid: Vec<(usize, usize, usize)> = match profile.as_str() {
        "smoke" => vec![(8, 8, 80), (16, 16, 320), (32, 32, 1280)],
        "full" => vec![
            (8, 8, 80),
            (16, 16, 320),
            (32, 32, 1280),
            (64, 64, 5120),
            (128, 128, 20480),
            (256, 256, 100_000),
        ],
        // Serve probe only — the 256×256/10⁴ incremental re-route figure
        // without the multi-minute engine grid in front of it.
        "serve" => Vec::new(),
        other => {
            eprintln!("unknown profile {other:?} (smoke|full|serve)");
            std::process::exit(2);
        }
    };
    let (srv_rows, srv_cols, srv_comms) = match profile.as_str() {
        "smoke" => (64, 64, 1_000),
        _ => (256, 256, 10_000),
    };

    eprintln!(
        "pamr-bench scaling: profile {profile}, {} grid points, len-{SCALING_PATH_LEN} local \
         traffic{}",
        grid.len(),
        if check_only { ", cross-check only" } else { "" }
    );
    let mut points = Vec::new();
    for &(rows, cols, comms) in &grid {
        let p = measure_scaling_point(rows, cols, comms, seed, check_only);
        if check_only {
            eprintln!(
                "  {rows}×{cols}/{comms}: {}",
                if p.crosschecked {
                    "bit-identical to the reference engines"
                } else {
                    "above the oracle cutoff (not checked)"
                }
            );
        } else {
            let capped = |ms: Option<f64>| match ms {
                Some(ms) => format!("{ms:.2} ms"),
                None => "capped".into(),
            };
            eprintln!(
                "  {rows}×{cols}/{comms}: {}PR {}, XYI {}, IG {:.2} ms",
                if p.crosschecked { "[checked] " } else { "" },
                capped(p.pr_ms),
                capped(p.xyi_ms),
                p.ig_ms
            );
        }
        points.push(p);
    }
    if check_only {
        println!(
            "scaling check: OK ({} points bit-identical to the reference engines)",
            points.iter().filter(|p| p.crosschecked).count()
        );
        return;
    }
    // A slope needs at least two grid points; the serve profile has none.
    let fits = if points.len() >= 2 {
        vec![
            scaling_fit("pr", &points, |p| p.pr_ms),
            scaling_fit("xyi", &points, |p| p.xyi_ms),
            scaling_fit("ig", &points, |p| Some(p.ig_ms)),
        ]
    } else {
        Vec::new()
    };
    for f in &fits {
        eprintln!(
            "  fit {}: exponent {:.2} (r² {:.3})",
            f.engine, f.exponent, f.r2
        );
    }
    let serve = measure_scaling_serve(srv_rows, srv_cols, srv_comms, 200, seed);
    eprintln!(
        "  serve {}×{}/{}: mean {:.3} ms, max {:.3} ms per mutation, {} escalations",
        serve.rows,
        serve.cols,
        serve.comms,
        serve.mean_mutation_ms,
        serve.max_mutation_ms,
        serve.escalations
    );
    let bench = ScalingBench {
        profile,
        seed,
        path_len: SCALING_PATH_LEN,
        points,
        fits,
        serve,
    };

    let mut report = std::fs::read_to_string(&out)
        .ok()
        .and_then(|text| match serde_json::from_str::<BenchReport>(&text) {
            Ok(report) => Some(report),
            Err(e) => {
                eprintln!(
                    "pamr-bench scaling: existing {out} does not parse as a bench report \
                     ({e}); replacing it with a scaling-only report"
                );
                None
            }
        })
        .unwrap_or_else(|| empty_report("scaling", seed));
    report.scaling = Some(bench);
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("{json}");
}

/// The focused bi-objective lane (`pamr-bench frontier`): a bigger sample
/// of the pooled-vs-sequential sweep measurement `run` records, merged
/// into `BENCH_summary.json` like the engine lanes.
fn cmd_frontier(args: &[String]) {
    let comms: usize = opt(args, "--comms")
        .map(|s| s.parse().expect("--comms needs a positive integer"))
        .unwrap_or(80);
    assert!(comms > 0, "--comms must be positive");
    let segments: usize = opt(args, "--segments")
        .map(|s| s.parse().expect("--segments needs a positive integer"))
        .unwrap_or(32);
    assert!(segments > 0, "--segments must be positive");
    let split: usize = opt(args, "--split")
        .map(|s| s.parse().expect("--split needs an integer"))
        .unwrap_or(2);
    let repeats: usize = opt(args, "--repeats")
        .map(|s| s.parse().expect("--repeats needs a positive integer"))
        .unwrap_or(5);
    assert!(repeats > 0, "--repeats must be positive");
    let seed: u64 = opt(args, "--seed")
        .map(|s| s.parse().expect("--seed needs an integer"))
        .unwrap_or(0xC0FFEE);
    let out = opt(args, "--out").unwrap_or_else(|| "BENCH_summary.json".into());

    eprintln!(
        "pamr-bench frontier: {comms} comms × {segments} segments (split {split}) × \
         {repeats} repeat(s), pooled sweep vs sequential solver"
    );
    let bench = measure_frontier(comms, segments, split, repeats, seed);
    eprintln!(
        "pamr-bench frontier: sequential {:.3} ms/sweep, pooled {:.3} ms/sweep, \
         speedup {:.2}x, {} Pareto point(s), sets identical → {out}",
        bench.sequential_ms, bench.pooled_ms, bench.speedup, bench.pareto_points
    );

    let mut report = std::fs::read_to_string(&out)
        .ok()
        .and_then(|text| match serde_json::from_str::<BenchReport>(&text) {
            Ok(report) => Some(report),
            Err(e) => {
                eprintln!(
                    "pamr-bench frontier: existing {out} does not parse as a bench report \
                     ({e}); replacing it with a frontier-only report"
                );
                None
            }
        })
        .unwrap_or_else(|| empty_report("frontier", seed));
    report.frontier = Some(bench);
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("{json}");
}

/// The multi-process shard lane's report (`BENCH_shard.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ShardBenchReport {
    /// Report format version.
    schema: u32,
    /// Number of concurrent shard processes in the sharded pass.
    shards: usize,
    /// Trials per sweep point.
    trials: usize,
    /// Master seed.
    seed: u64,
    /// Wall time of one process running the whole campaign + merge, ms.
    wall_ms_single: f64,
    /// Wall time of N concurrent shard processes + merge, ms.
    wall_ms_sharded: f64,
    /// Of which, the merge step alone (sharded pass), ms.
    merge_ms: f64,
    /// `wall_ms_single / wall_ms_sharded`.
    speedup: f64,
    /// Both pipelines printed byte-identical §6.4 reports.
    reports_identical: bool,
}

/// Times the 1-process vs N-process sharded campaign by driving the `pamr`
/// binary (`shard` + `merge` subcommands) as real child processes.
fn cmd_shard(args: &[String]) {
    let shards: usize = opt(args, "--shards")
        .map(|s| s.parse().expect("--shards needs a positive integer"))
        .unwrap_or(2);
    assert!(shards > 0, "--shards must be positive");
    let trials: usize = opt(args, "--trials")
        .map(|s| s.parse().expect("--trials needs a positive integer"))
        .unwrap_or(10);
    let seed: u64 = opt(args, "--seed")
        .map(|s| s.parse().expect("--seed needs an integer"))
        .unwrap_or(0xC0FFEE);
    let out = opt(args, "--out").unwrap_or_else(|| "BENCH_shard.json".into());
    let pamr = opt(args, "--pamr")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            // Default: the `pamr` binary next to this one in the target dir.
            let mut p = std::env::current_exe().expect("current_exe");
            p.set_file_name("pamr");
            p
        });
    assert!(
        pamr.exists(),
        "pamr binary not found at {} (pass --pamr PATH)",
        pamr.display()
    );

    let dir = std::env::temp_dir().join(format!("pamr_bench_shard_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create shard scratch dir");
    let part = |i: usize, n: usize| dir.join(format!("part_{i}_of_{n}.json"));

    let shard_args = |i: usize, n: usize| {
        vec![
            "shard".to_string(),
            "--shard".into(),
            format!("{i}/{n}"),
            "--trials".into(),
            trials.to_string(),
            "--seed".into(),
            seed.to_string(),
            "--out".into(),
            part(i, n).display().to_string(),
        ]
    };
    let merge = |paths: &[std::path::PathBuf]| -> String {
        let out = Command::new(&pamr)
            .arg("merge")
            .args(paths)
            .output()
            .expect("spawn pamr merge");
        assert!(
            out.status.success(),
            "pamr merge failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("merge output is UTF-8")
    };

    eprintln!("pamr-bench shard: {trials} trials/point, 1 process vs {shards} processes");

    // Pass 1: the whole campaign in one process, then the (trivial) merge.
    let start = Instant::now();
    let status = Command::new(&pamr)
        .args(shard_args(0, 1))
        .status()
        .expect("spawn pamr shard 0/1");
    assert!(status.success(), "pamr shard 0/1 failed");
    let report_single = merge(&[part(0, 1)]);
    let wall_ms_single = start.elapsed().as_secs_f64() * 1e3;

    // Pass 2: N concurrent shard processes, then the real merge.
    let start = Instant::now();
    let children: Vec<_> = (0..shards)
        .map(|i| {
            Command::new(&pamr)
                .args(shard_args(i, shards))
                .spawn()
                .unwrap_or_else(|e| panic!("spawn pamr shard {i}/{shards}: {e}"))
        })
        .collect();
    for (i, mut child) in children.into_iter().enumerate() {
        let status = child.wait().expect("wait for shard process");
        assert!(status.success(), "pamr shard {i}/{shards} failed");
    }
    let merge_start = Instant::now();
    let parts: Vec<_> = (0..shards).map(|i| part(i, shards)).collect();
    let report_sharded = merge(&parts);
    let merge_ms = merge_start.elapsed().as_secs_f64() * 1e3;
    let wall_ms_sharded = start.elapsed().as_secs_f64() * 1e3;

    let reports_identical = report_single == report_sharded;
    assert!(
        reports_identical,
        "sharded report diverged from the single-process report:\n--- single\n{report_single}\n--- sharded\n{report_sharded}"
    );

    let report = ShardBenchReport {
        schema: 1,
        shards,
        trials,
        seed,
        wall_ms_single,
        wall_ms_sharded,
        merge_ms,
        speedup: wall_ms_single / wall_ms_sharded,
        reports_identical,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("{json}");
    eprintln!(
        "pamr-bench shard: single {wall_ms_single:.0} ms, {shards}-process {wall_ms_sharded:.0} ms \
         (merge {merge_ms:.0} ms), speedup {:.2}x, reports identical → {out}",
        report.speedup
    );
    let _ = std::fs::remove_dir_all(&dir);
}
