//! `pamr-bench` — the campaign benchmark runner behind the CI `bench` lane.
//!
//! Measures the wall time of the §6 figure campaigns twice — once on a
//! single worker thread (the sequential baseline) and once on the full
//! work-pool — and emits a machine-readable `BENCH_summary.json` so the
//! perf trajectory is tracked from one PR to the next.
//!
//! ```text
//! pamr-bench run [--profile smoke|full] [--trials N] [--seed S] [--out FILE]
//! pamr-bench check --baseline FILE --current FILE [--max-ratio R]
//! ```
//!
//! `run` executes the campaigns and writes the report; `check` compares a
//! fresh report against a committed baseline and exits non-zero when the
//! parallel wall time regressed by more than `--max-ratio` (default 2.0) —
//! lenient enough to absorb runner-to-runner noise, tight enough to catch
//! a genuine hot-path regression.

use pamr_sim::experiments::{fig7, fig8, fig9, Experiment};
use pamr_sim::Campaign;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Per-figure measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FigureBench {
    /// Figure id (`fig7` / `fig8` / `fig9`).
    id: String,
    /// Total instances routed per pass (sweep points × trials).
    instances: usize,
    /// Wall time of the 1-thread pass, milliseconds.
    wall_ms_seq: f64,
    /// Wall time of the N-thread pass, milliseconds.
    wall_ms_par: f64,
    /// `wall_ms_seq / wall_ms_par`.
    speedup: f64,
    /// Instances per second of the parallel pass.
    trials_per_sec: f64,
}

/// The whole report (`BENCH_summary.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchReport {
    /// Report format version.
    schema: u32,
    /// Profile name (`smoke` / `full` / `custom`).
    profile: String,
    /// Worker threads of the parallel pass.
    threads: usize,
    /// Trials per sweep point.
    trials: usize,
    /// Master seed.
    seed: u64,
    /// Per-figure measurements.
    figures: Vec<FigureBench>,
    /// Sum of the sequential passes, milliseconds.
    total_wall_ms_seq: f64,
    /// Sum of the parallel passes, milliseconds.
    total_wall_ms_par: f64,
    /// Overall sequential/parallel speedup.
    speedup: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  pamr-bench run [--profile smoke|full] [--trials N] [--seed S] [--out FILE]\n  \
         pamr-bench check --baseline FILE --current FILE [--max-ratio R]"
    );
    std::process::exit(2);
}

fn opt(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        _ => usage(),
    }
}

/// Runs one figure group at a fixed thread count, returning the wall time.
fn time_group(exps: &[Experiment], trials: usize, seed: u64, threads: usize) -> f64 {
    rayon::set_num_threads(threads);
    let mesh = pamr_sim::paper_mesh();
    let model = pamr_sim::paper_model();
    let campaign = Campaign {
        mesh: &mesh,
        model: &model,
        trials,
        seed,
    };
    let start = Instant::now();
    for exp in exps {
        let res = campaign.run_experiment(exp);
        assert!(
            res.points.iter().all(|(_, s)| s.trials == trials),
            "campaign dropped trials"
        );
    }
    rayon::set_num_threads(0);
    start.elapsed().as_secs_f64() * 1e3
}

fn cmd_run(args: &[String]) {
    let profile = opt(args, "--profile").unwrap_or_else(|| "smoke".into());
    let mut trials = match profile.as_str() {
        "smoke" => 10,
        "full" => 200,
        other => {
            eprintln!("unknown profile {other:?} (smoke|full)");
            std::process::exit(2);
        }
    };
    if let Some(t) = opt(args, "--trials") {
        trials = t.parse().expect("--trials needs a positive integer");
        assert!(trials > 0, "--trials must be positive");
    }
    let seed: u64 = opt(args, "--seed")
        .map(|s| s.parse().expect("--seed needs an integer"))
        .unwrap_or(0xC0FFEE);
    let out = opt(args, "--out").unwrap_or_else(|| "BENCH_summary.json".into());

    let threads = rayon::current_num_threads();
    eprintln!(
        "pamr-bench: profile {profile}, {trials} trials/point, seq (1 thread) vs par ({threads} threads)"
    );

    let groups: [(&str, Vec<Experiment>); 3] =
        [("fig7", fig7()), ("fig8", fig8()), ("fig9", fig9())];
    let mut figures = Vec::new();
    for (id, exps) in &groups {
        let instances: usize = exps.iter().map(|e| e.points.len() * trials).sum();
        let wall_ms_seq = time_group(exps, trials, seed, 1);
        let wall_ms_par = time_group(exps, trials, seed, 0);
        let fig = FigureBench {
            id: (*id).to_string(),
            instances,
            wall_ms_seq,
            wall_ms_par,
            speedup: wall_ms_seq / wall_ms_par,
            trials_per_sec: instances as f64 / (wall_ms_par / 1e3),
        };
        eprintln!(
            "  {id}: seq {:.0} ms, par {:.0} ms, speedup {:.2}x, {:.0} instances/s",
            fig.wall_ms_seq, fig.wall_ms_par, fig.speedup, fig.trials_per_sec
        );
        figures.push(fig);
    }

    let total_wall_ms_seq: f64 = figures.iter().map(|f| f.wall_ms_seq).sum();
    let total_wall_ms_par: f64 = figures.iter().map(|f| f.wall_ms_par).sum();
    let report = BenchReport {
        schema: 1,
        profile,
        threads,
        trials,
        seed,
        figures,
        total_wall_ms_seq,
        total_wall_ms_par,
        speedup: total_wall_ms_seq / total_wall_ms_par,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("{json}");
    eprintln!(
        "pamr-bench: total seq {total_wall_ms_seq:.0} ms, par {total_wall_ms_par:.0} ms, \
         speedup {:.2}x → {out}",
        report.speedup
    );
}

fn cmd_check(args: &[String]) {
    let baseline_path = opt(args, "--baseline").unwrap_or_else(|| usage());
    let current_path = opt(args, "--current").unwrap_or_else(|| usage());
    let max_ratio: f64 = opt(args, "--max-ratio")
        .map(|s| s.parse().expect("--max-ratio needs a number"))
        .unwrap_or(2.0);
    let load = |path: &str| -> BenchReport {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"))
    };
    let baseline = load(&baseline_path);
    let current = load(&current_path);
    assert_eq!(
        baseline.schema, current.schema,
        "baseline and current use different report schemas"
    );
    assert_eq!(
        baseline.profile, current.profile,
        "baseline and current measure different profiles"
    );
    assert_eq!(
        baseline.trials, current.trials,
        "baseline and current measure different trial budgets \
         (refresh the committed baseline after changing the profile)"
    );
    assert_eq!(
        baseline.figures.iter().map(|f| &f.id).collect::<Vec<_>>(),
        current.figures.iter().map(|f| &f.id).collect::<Vec<_>>(),
        "baseline and current measure different figure sets"
    );
    let ratio = current.total_wall_ms_par / baseline.total_wall_ms_par;
    println!(
        "bench check: baseline {:.0} ms, current {:.0} ms, ratio {ratio:.2} (limit {max_ratio:.2})",
        baseline.total_wall_ms_par, current.total_wall_ms_par
    );
    for (b, c) in baseline.figures.iter().zip(&current.figures) {
        println!(
            "  {}: {:.0} ms → {:.0} ms ({:.2}x)",
            c.id,
            b.wall_ms_par,
            c.wall_ms_par,
            c.wall_ms_par / b.wall_ms_par
        );
    }
    if ratio > max_ratio {
        eprintln!(
            "REGRESSION: parallel campaign wall time grew {ratio:.2}x over the committed \
             baseline (limit {max_ratio:.2}x)"
        );
        std::process::exit(1);
    }
    println!("bench check: OK");
}
