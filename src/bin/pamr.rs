//! `pamr` — command-line front end for power-aware Manhattan routing.
//!
//! ```text
//! pamr random --mesh 8x8 --n 20 --wmin 100 --wmax 2500 [--seed S] > inst.json
//! pamr route  --instance inst.json [--heuristic BEST|XY|SG|IG|TB|XYI|PR]
//!             [--model kim-horowitz|continuous] [--split S] [--json]
//! pamr frontier [--instance inst.json | --mesh PxQ --n N [--seed S]]
//!             [--model NAME] [--segments K] [--split S]
//!             [--shard i/N --out part_i.json] [--merge part_0.json ...]
//!             [--csv] [--json] [--check-only]
//! pamr shard  --shard i/N --out part_i.json [--trials T] [--seed S] [--threads K]
//! pamr merge  [--figures] part_0.json part_1.json ...
//! pamr serve  [--mesh PxQ] [--model NAME] [--heuristic NAME]
//!             [--repair bounded|full] [--max-moves N] [--stdin | --tcp ADDR]
//! pamr demo
//! ```
//!
//! Instances are JSON (`{"mesh": {"p":8,"q":8}, "comms": [{"src":…}]}` —
//! exactly serde's view of [`CommSet`]); `route` prints per-communication
//! paths, the power breakdown and the link heatmap, or a machine-readable
//! JSON report with `--json`.
//!
//! `shard` runs one process's slice of the §6 campaign (sweep points `p`
//! with `p % N == i`) and writes the per-point statistics as JSON; `merge`
//! recombines the N partials and prints the §6.4 summary — byte-identical
//! to a single-process `summary` run with the same trials and seed. With
//! `--figures` it instead renders the recombined Figure 7–9 tables (the
//! per-point statistics are bit-equal to the unsharded campaign's, so the
//! tables are byte-identical too).
//!
//! `frontier` sweeps the bi-objective power × max-hop-latency plane of one
//! instance (ε-constraint over latency budgets) and prints the
//! dominance-filtered Pareto set. `--shard i/N --out F` solves only the
//! segments `s` with `s % N == i` and writes a partial; `--merge` recombines
//! the partials into the byte-identical single-process report.
//!
//! `serve` keeps a [`RoutingSession`] resident and answers newline-delimited
//! JSON requests (`add_comm`, `remove_comm`, `reroute`, `power_report`,
//! `snapshot`) over stdin/stdout (`--stdin`, the default) or a TCP socket
//! (`--tcp 127.0.0.1:9667`); see `pamr::sim::serve` for the wire schema.
//!
//! [`RoutingSession`]: pamr::routing::RoutingSession

use pamr::prelude::*;
use pamr::sim::shard::{merge_figures, merge_partials, ShardPartial};
use pamr::sim::table::{failure_table, norm_inv_table};
use pamr::sim::viz::render_heatmap;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use std::collections::HashMap;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  pamr random --mesh PxQ --n N [--wmin W] [--wmax W] [--seed S]\n  \
         pamr route --instance FILE [--heuristic NAME] [--model NAME] [--split S] [--json]\n  \
         pamr frontier [--instance FILE | --mesh PxQ --n N [--seed S]] [--model NAME] \
         [--segments K] [--split S] [--shard i/N --out FILE] [--merge FILE...] \
         [--csv] [--json] [--check-only]\n  \
         pamr shard --shard i/N --out FILE [--trials T] [--seed S] [--threads K]\n  \
         pamr merge [--figures] FILE...\n  \
         pamr serve [--mesh PxQ] [--model NAME] [--heuristic NAME] \
         [--repair bounded|full] [--max-moves N] [--stdin | --tcp ADDR]\n  \
         pamr demo"
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("random") => cmd_random(&args[1..]),
        Some("route") => cmd_route(&args[1..]),
        Some("frontier") => cmd_frontier(&args[1..]),
        Some("shard") => cmd_shard(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("demo") => cmd_demo(),
        _ => usage(),
    }
}

fn opt(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn cmd_random(args: &[String]) {
    let mesh_spec = opt(args, "--mesh").unwrap_or_else(|| "8x8".into());
    let (p, q) = mesh_spec
        .split_once('x')
        .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
        .unwrap_or_else(|| usage());
    let n: usize = opt(args, "--n").and_then(|v| v.parse().ok()).unwrap_or(20);
    let w_min: f64 = opt(args, "--wmin")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100.0);
    let w_max: f64 = opt(args, "--wmax")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2500.0);
    let seed: u64 = opt(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let mesh = Mesh::new(p, q);
    let mut rng = SmallRng::seed_from_u64(seed);
    let cs = UniformWorkload::new(n, w_min, w_max).generate(&mesh, &mut rng);
    println!("{}", serde_json::to_string_pretty(&cs).expect("serialise"));
}

#[derive(Serialize)]
struct RouteReport {
    heuristic: String,
    feasible: bool,
    power_mw: Option<f64>,
    leakage_mw: Option<f64>,
    dynamic_mw: Option<f64>,
    active_links: Option<usize>,
    max_link_load: f64,
    paths: Vec<Vec<String>>,
}

fn build_model(name: &str, mesh_capacity_hint: f64) -> PowerModel {
    match name {
        "kim-horowitz" | "kh" => PowerModel::kim_horowitz(),
        "continuous" => PowerModel::kim_horowitz_continuous(),
        "fig2" => PowerModel::fig2(),
        "theory" => PowerModel::theory(3.0),
        other => {
            let _ = mesh_capacity_hint;
            eprintln!("unknown model {other:?} (kim-horowitz | continuous | fig2 | theory)");
            exit(2);
        }
    }
}

fn cmd_route(args: &[String]) {
    let path = opt(args, "--instance").unwrap_or_else(|| usage());
    let data = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    let cs: CommSet = serde_json::from_str(&data).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        exit(1);
    });
    let model = build_model(
        &opt(args, "--model").unwrap_or_else(|| "kim-horowitz".into()),
        0.0,
    );
    let name = opt(args, "--heuristic").unwrap_or_else(|| "BEST".into());
    let split: usize = opt(args, "--split")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);

    let (label, routing): (String, Routing) = if name.eq_ignore_ascii_case("best") {
        let best = Best::default().route(&cs, &model);
        if best.is_feasible() {
            (format!("BEST={}", best.kind), best.routing)
        } else {
            // Report the fallback attempt so the user still sees loads.
            (format!("BEST=none({} shown)", best.kind), best.routing)
        }
    } else {
        let kind = HeuristicKind::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(&name))
            .unwrap_or_else(|| {
                eprintln!("unknown heuristic {name:?} (XY SG IG TB XYI PR BEST)");
                exit(2);
            });
        if split > 1 {
            // s-MP lift of the chosen single-path heuristic.
            struct ByKind(HeuristicKind);
            impl Heuristic for ByKind {
                fn name(&self) -> &'static str {
                    self.0.name()
                }
                fn route_with(
                    &self,
                    cs: &CommSet,
                    model: &PowerModel,
                    scratch: &mut RouteScratch,
                ) -> Routing {
                    self.0.route_with(cs, model, scratch)
                }
            }
            (
                format!("{}-{}MP", kind.name(), split),
                SplitMp::new(ByKind(kind), split).route(&cs, &model),
            )
        } else {
            (kind.name().into(), kind.route(&cs, &model))
        }
    };

    let loads = routing.loads(&cs);
    let breakdown = routing.power(&cs, &model).ok();
    let report = RouteReport {
        heuristic: label.clone(),
        feasible: breakdown.is_some(),
        power_mw: breakdown.map(|b| b.total()),
        leakage_mw: breakdown.map(|b| b.leakage),
        dynamic_mw: breakdown.map(|b| b.dynamic),
        active_links: breakdown.map(|b| b.active_links),
        max_link_load: loads.max_load(),
        paths: (0..cs.len())
            .map(|i| {
                routing
                    .flows(i)
                    .iter()
                    .map(|(p, r)| format!("{p} @{r:.1}"))
                    .collect()
            })
            .collect(),
    };

    if flag(args, "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("serialise")
        );
        return;
    }
    println!("routed {} communications with {label}", cs.len());
    match breakdown {
        Some(b) => println!(
            "power: {:.1} mW ({} active links, {:.1} leakage + {:.1} dynamic)",
            b.total(),
            b.active_links,
            b.leakage,
            b.dynamic
        ),
        None => println!(
            "INFEASIBLE: max link load {:.0} exceeds capacity",
            loads.max_load()
        ),
    }
    // Per-heuristic comparison footer.
    let mut comparison: HashMap<&str, Option<f64>> = HashMap::new();
    for kind in HeuristicKind::ALL {
        let r = kind.route(&cs, &model);
        comparison.insert(kind.name(), r.power(&cs, &model).ok().map(|b| b.total()));
    }
    println!("\nall policies:");
    for kind in HeuristicKind::ALL {
        match comparison[kind.name()] {
            Some(p) => println!("  {:<4} {p:>10.1} mW", kind.name()),
            None => println!("  {:<4} {:>10}", kind.name(), "failed"),
        }
    }
    println!("\nutilisation heatmap:");
    print!("{}", render_heatmap(cs.mesh(), &loads, model.capacity));
}

fn cmd_frontier(args: &[String]) {
    use pamr::sim::frontier::{merge_frontier, FrontierPartial, FrontierReport};

    // Merge mode: recombine shard partials into the 1-process report.
    let merge_files: Vec<&String> = args
        .iter()
        .position(|a| a == "--merge")
        .map(|i| {
            args[i + 1..]
                .iter()
                .take_while(|a| !a.starts_with("--"))
                .collect()
        })
        .unwrap_or_default();
    if args.iter().any(|a| a == "--merge") && merge_files.is_empty() {
        usage();
    }

    let segments: usize = opt(args, "--segments")
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let split: usize = opt(args, "--split")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);

    let report = if !merge_files.is_empty() {
        let partials: Vec<FrontierPartial> = merge_files
            .iter()
            .map(|path| {
                let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    exit(1);
                });
                FrontierPartial::from_json(&text).unwrap_or_else(|e| {
                    eprintln!("{path}: {e}");
                    exit(1);
                })
            })
            .collect();
        merge_frontier(&partials).unwrap_or_else(|e| {
            eprintln!("cannot merge: {e}");
            exit(1);
        })
    } else {
        // The instance: a file, or a seeded uniform draw (as `pamr random`).
        let cs: CommSet = if let Some(path) = opt(args, "--instance") {
            let data = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                exit(1);
            });
            serde_json::from_str(&data).unwrap_or_else(|e| {
                eprintln!("cannot parse {path}: {e}");
                exit(1);
            })
        } else {
            let mesh_spec = opt(args, "--mesh").unwrap_or_else(|| "8x8".into());
            let (p, q) = mesh_spec
                .split_once('x')
                .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
                .unwrap_or_else(|| usage());
            let n: usize = opt(args, "--n").and_then(|v| v.parse().ok()).unwrap_or(20);
            let seed: u64 = opt(args, "--seed")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1);
            let mut rng = SmallRng::seed_from_u64(seed);
            UniformWorkload::new(n, 100.0, 2500.0).generate(&Mesh::new(p, q), &mut rng)
        };
        let model = build_model(
            &opt(args, "--model").unwrap_or_else(|| "kim-horowitz".into()),
            0.0,
        );

        // Shard mode: solve the owned segments and write the partial.
        if let Some(spec) = opt(args, "--shard") {
            let shard = pamr::sim::ShardSpec::parse(&spec).unwrap_or_else(|e| {
                eprintln!("{e}");
                exit(2);
            });
            let Some(out) = opt(args, "--out") else {
                usage();
            };
            let partial = FrontierPartial::run(&cs, &model, segments, split, shard);
            std::fs::write(&out, partial.to_json()).unwrap_or_else(|e| {
                eprintln!("writing {out}: {e}");
                exit(1);
            });
            eprintln!(
                "wrote {} segment(s) to {out} (recombine with `pamr frontier --merge`)",
                partial.owned.len()
            );
            return;
        }
        FrontierReport::compute(&cs, &model, segments, split)
    };

    if let Err(e) = report.check() {
        eprintln!("frontier check failed: {e}");
        exit(1);
    }
    if flag(args, "--check-only") {
        eprintln!(
            "frontier check ok ({} Pareto point(s), {} segments)",
            report.pareto.len(),
            report.segments
        );
        return;
    }
    if flag(args, "--json") {
        println!("{}", report.to_json());
    } else if flag(args, "--csv") {
        print!("{}", report.to_csv());
    } else {
        print!("{}", report.render());
    }
}

fn cmd_shard(args: &[String]) {
    // Same strict parsing as the sim binaries: malformed --trials/--seed
    // must fail here, not surface as a mismatch at merge time.
    let opts = pamr::sim::cli::Options::parse_from(args.iter().cloned());
    let Some(out) = opts.out.as_deref() else {
        usage()
    };
    let mesh = pamr::sim::paper_mesh();
    let model = pamr::sim::paper_model();
    eprintln!(
        "running shard {} of the §6 campaign ({} trials per sweep point, {} worker thread(s)) ...",
        opts.shard,
        opts.trials,
        rayon::current_num_threads()
    );
    let partial = ShardPartial::run(&mesh, &model, opts.trials, opts.seed, opts.shard);
    std::fs::write(out, partial.to_json()).unwrap_or_else(|e| {
        eprintln!("writing {}: {e}", out.display());
        exit(1);
    });
    eprintln!(
        "wrote {} sweep points to {} (recombine with `pamr merge`)",
        partial.points.len(),
        out.display()
    );
}

fn cmd_merge(args: &[String]) {
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if files.is_empty() {
        usage();
    }
    let partials: Vec<ShardPartial> = files
        .iter()
        .map(|path| {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                exit(1);
            });
            ShardPartial::from_json(&text).unwrap_or_else(|e| {
                eprintln!("{path}: {e}");
                exit(1);
            })
        })
        .collect();
    if flag(args, "--figures") {
        // Recombine the per-figure tables instead of the pooled summary.
        let figures = merge_figures(&partials).unwrap_or_else(|e| {
            eprintln!("cannot merge: {e}");
            exit(1);
        });
        for res in figures.iter().flatten() {
            println!("== {} ==", res.id);
            println!("normalised power inverse");
            print!("{}", norm_inv_table(res));
            println!("failure ratio");
            print!("{}", failure_table(res));
            println!();
        }
        return;
    }
    let merged = merge_partials(&partials).unwrap_or_else(|e| {
        eprintln!("cannot merge: {e}");
        exit(1);
    });
    eprintln!(
        "merged {} shard(s), {} trials per sweep point, seed {}",
        merged.shard_count, merged.trials, merged.seed
    );
    print!("{}", merged.summary().render_report());
}

fn cmd_serve(args: &[String]) {
    let mesh_spec = opt(args, "--mesh").unwrap_or_else(|| "8x8".into());
    let (p, q) = mesh_spec
        .split_once('x')
        .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
        .unwrap_or_else(|| usage());
    let mesh = Mesh::new(p, q);
    let model = build_model(
        &opt(args, "--model").unwrap_or_else(|| "kim-horowitz".into()),
        0.0,
    );
    let heur_name = opt(args, "--heuristic").unwrap_or_else(|| "XYI".into());
    let heuristic = HeuristicKind::ALL
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(&heur_name))
        .unwrap_or_else(|| {
            eprintln!("unknown heuristic {heur_name:?} (XY SG IG TB XYI PR)");
            exit(2);
        });
    let repair = match opt(args, "--repair").as_deref().unwrap_or("bounded") {
        "full" => pamr::routing::RepairMode::Full,
        "bounded" => {
            let max_moves = opt(args, "--max-moves")
                .and_then(|v| v.parse().ok())
                .unwrap_or(10_000);
            pamr::routing::RepairMode::Bounded { max_moves }
        }
        other => {
            eprintln!("unknown repair mode {other:?} (bounded | full)");
            exit(2);
        }
    };
    let config = pamr::routing::SessionConfig {
        heuristic,
        repair,
        ..Default::default()
    };
    let mut server = pamr::sim::serve::Server::new(mesh, model, config);
    let result = match opt(args, "--tcp") {
        Some(addr) if !flag(args, "--stdin") => pamr::sim::serve::serve_tcp(&mut server, &addr),
        _ => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            pamr::sim::serve::serve_lines(&mut server, stdin.lock(), stdout.lock())
        }
    };
    if let Err(e) = result {
        eprintln!("pamr serve: {e}");
        exit(1);
    }
}

fn cmd_demo() {
    let mesh = Mesh::new(8, 8);
    let mut rng = SmallRng::seed_from_u64(7);
    let cs = UniformWorkload::new(25, 100.0, 2500.0).generate(&mesh, &mut rng);
    let model = PowerModel::kim_horowitz();
    println!("demo: 25 random communications on an 8×8 CMP\n");
    for kind in HeuristicKind::ALL {
        let r = kind.route(&cs, &model);
        match r.power(&cs, &model) {
            Ok(b) => println!("  {:<4} {:>10.1} mW", kind.name(), b.total()),
            Err(_) => println!("  {:<4} {:>10}", kind.name(), "failed"),
        }
    }
    let best = Best::default().route(&cs, &model);
    if let Some(power) = best.power {
        println!("\nBEST = {} at {power:.1} mW", best.kind);
        println!(
            "{}",
            render_heatmap(&mesh, &best.routing.loads(&cs), model.capacity)
        );
    }
}
