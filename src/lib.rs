//! # pamr — Power-Aware Manhattan Routing on chip multiprocessors
//!
//! A full reproduction of *Power-aware Manhattan routing on chip
//! multiprocessors* (Anne Benoit, Rami Melhem, Paul Renaud-Goud, Yves
//! Robert; INRIA RR-7752, IPDPS 2012) as a Rust workspace. This facade
//! crate re-exports every sub-crate under one roof:
//!
//! * [`mesh`] — the `p × q` CMP mesh substrate (coordinates, links,
//!   diagonals, Manhattan paths, bands, load maps);
//! * [`power`] — the static + dynamic link power model with continuous or
//!   discrete frequency scaling (Kim–Horowitz constants);
//! * [`routing`] — the core: problem instances, routings, the XY baseline
//!   and the five heuristics (SG, IG, TB, XYI, PR) plus BEST, the
//!   Frank–Wolfe multi-path bound and an exact 1-MP solver;
//! * [`workload`] — instance generators (uniform, length-targeted,
//!   application task graphs);
//! * [`theory`] — executable constructions for Lemma 1, Theorem 1,
//!   Lemma 2 and the Theorem 3 NP-completeness reduction;
//! * [`nocsim`] — a packet-level discrete-event NoC simulator that
//!   executes routings and reports latency/energy/backlog;
//! * [`sim`] — the paper's §6 simulation campaign (Figures 7–9, §6.4
//!   summary statistics), rayon-parallel and seeded.
//!
//! ## Quickstart
//!
//! ```
//! use pamr::prelude::*;
//!
//! // Two applications mapped on an 8×8 CMP…
//! let mesh = Mesh::new(8, 8);
//! let cs = CommSet::new(mesh, vec![
//!     Comm::new(Coord::new(0, 0), Coord::new(4, 6), 1400.0),
//!     Comm::new(Coord::new(0, 0), Coord::new(4, 6), 900.0),
//!     Comm::new(Coord::new(7, 2), Coord::new(1, 3), 2200.0),
//! ]);
//! // …the paper's discrete link model…
//! let model = PowerModel::kim_horowitz();
//! // …and the best heuristic routing.
//! let best = Best::default().route(&cs, &model);
//! let power = best.power.expect("this instance is routable");
//! println!("{} found a {power:.1} mW routing", best.kind);
//! assert!(best.routing.is_feasible(&cs, &model));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The full architecture tour — crate map, the precompute → customize →
// route pipeline, the engine/reference-oracle pattern — rendered into
// this crate's front page straight from the repository's ARCHITECTURE.md.
#![doc = ""]
#![doc = "---"]
#![doc = ""]
#![doc = include_str!("../ARCHITECTURE.md")]

pub use pamr_mesh as mesh;
pub use pamr_nocsim as nocsim;
pub use pamr_power as power;
pub use pamr_routing as routing;
pub use pamr_sim as sim;
pub use pamr_theory as theory;
pub use pamr_workload as workload;

/// The most common imports, in one place.
pub mod prelude {
    pub use pamr_mesh::{Band, Coord, LinkId, LoadMap, Mesh, Path, Quadrant, Step};
    pub use pamr_power::{FrequencyScale, PowerBreakdown, PowerModel};
    pub use pamr_routing::{
        frank_wolfe, frontier_points, optimal_single_path, xy_routing, yx_routing, Best, BestRoute,
        Comm, CommSet, EngineConfig, EngineSel, FlowId, FrontierPoint, FrontierProblem, FwMp,
        Heuristic, HeuristicKind, ImprovedGreedy, PathRemover, RouteScratch, Routing,
        RoutingTables, Segment, SimpleGreedy, SortOrder, SplitMp, TwoBend, XyImprover,
    };
    pub use pamr_workload::{LengthTargetedWorkload, Mapping, TaskGraph, UniformWorkload};
}
