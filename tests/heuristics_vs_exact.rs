//! Integration test: heuristic quality against the exact 1-MP optimum on
//! small random instances (the paper's future-work item, executed).

use pamr::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn heuristics_bounded_by_exact_optimum_continuous() {
    let mesh = Mesh::new(4, 4);
    let model = PowerModel::continuous(1.0, 1.0, 3.0, f64::INFINITY);
    let gen = UniformWorkload::new(5, 1.0, 4.0);
    let mut best_gaps = Vec::new();
    for seed in 0..12u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cs = gen.generate(&mesh, &mut rng);
        let (_, opt) = optimal_single_path(&cs, &model, 1 << 24)
            .expect("budget")
            .expect("feasible");
        for kind in HeuristicKind::ALL {
            let r = kind.route(&cs, &model);
            let p = r.power(&cs, &model).unwrap().total();
            assert!(
                p + 1e-9 >= opt,
                "seed {seed}: {kind} ({p}) beat the optimum ({opt})"
            );
        }
        let best = Best::default()
            .route(&cs, &model)
            .power
            .expect("feasible instance");
        best_gaps.push(best / opt);
    }
    // The portfolio should be close to optimal on such small instances.
    let mean_gap = best_gaps.iter().sum::<f64>() / best_gaps.len() as f64;
    assert!(mean_gap < 1.5, "mean BEST/opt gap {mean_gap}");
}

#[test]
fn exact_agrees_with_heuristics_on_feasibility_discrete() {
    // With the discrete campaign model and tight capacity, whenever the
    // exact solver proves infeasibility no heuristic may claim success.
    let mesh = Mesh::new(3, 3);
    let model = PowerModel::kim_horowitz();
    let gen = UniformWorkload::new(4, 1500.0, 3500.0);
    for seed in 0..20u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cs = gen.generate(&mesh, &mut rng);
        let exact = optimal_single_path(&cs, &model, 1 << 24).expect("budget");
        let any_heur_ok = HeuristicKind::ALL
            .iter()
            .any(|k| k.route(&cs, &model).is_feasible(&cs, &model));
        match exact {
            Some((_, opt)) => {
                // Heuristics may fail where the optimum exists, but if one
                // succeeds it must not beat the optimum.
                for kind in HeuristicKind::ALL {
                    if let Ok(p) = kind.route(&cs, &model).power(&cs, &model) {
                        assert!(p.total() + 1e-9 >= opt, "seed {seed}: {kind} beat optimum");
                    }
                }
            }
            None => {
                assert!(
                    !any_heur_ok,
                    "seed {seed}: a heuristic claims feasibility on a provably infeasible instance"
                );
            }
        }
    }
}

#[test]
fn frank_wolfe_lower_bounds_the_single_path_optimum() {
    let mesh = Mesh::new(4, 4);
    let model = PowerModel::theory(2.5);
    let gen = UniformWorkload::new(4, 1.0, 3.0);
    for seed in 100..108u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cs = gen.generate(&mesh, &mut rng);
        let fw = frank_wolfe(&cs, &model, 300);
        let (_, opt) = optimal_single_path(&cs, &model, 1 << 24)
            .expect("budget")
            .expect("feasible");
        assert!(
            fw.lower_bound <= opt + 1e-6,
            "seed {seed}: FW bound {} exceeds optimum {opt}",
            fw.lower_bound
        );
    }
}
