//! Integration tests tying the Section 4 constructions to the routing
//! machinery.

use pamr::prelude::*;
use pamr::theory::np::routing_from_partition;
use pamr::theory::{
    fig4_pattern, lemma2_instance, partition_exists, reduction_instance, xy_corner_power,
};

#[test]
fn heuristics_rescue_the_lemma2_instance() {
    // On the anti-diagonal instance, every Manhattan heuristic must beat
    // XY by a wide margin (YX-like routings are in reach of all of them).
    let cs = lemma2_instance(6);
    let model = PowerModel::theory(3.0);
    let p_xy = xy_routing(&cs).power(&cs, &model).unwrap().total();
    let p_yx = yx_routing(&cs).power(&cs, &model).unwrap().total();
    for kind in [
        HeuristicKind::Sg,
        HeuristicKind::Ig,
        HeuristicKind::Tb,
        HeuristicKind::Pr,
    ] {
        let p = kind.route(&cs, &model).power(&cs, &model).unwrap().total();
        assert!(
            p <= p_xy / 2.0,
            "{kind} at {p} did not substantially beat XY ({p_xy})"
        );
        assert!(p + 1e-9 >= p_yx, "{kind} beat the disjoint lower bound?!");
    }
}

#[test]
fn fig4_pattern_beats_every_single_path_routing_of_one_flow() {
    // Theorem 1's setting: ALL traffic shares one source and one sink. As a
    // single unsplittable communication, any Manhattan path carries the
    // full K on each of its 2p−2 links, so every single-path policy costs
    // exactly (2p−2)·K^α — which the multi-path Fig. 4 pattern beats by a
    // factor growing with p.
    let p_prime = 4;
    let k_total = 4.0;
    let model = PowerModel::theory(3.0);
    let pat = fig4_pattern(p_prime, k_total);
    let mesh = Mesh::new(2 * p_prime, 2 * p_prime);
    let cs = CommSet::new(
        mesh,
        vec![Comm::new(
            Coord::new(0, 0),
            Coord::new(2 * p_prime - 1, 2 * p_prime - 1),
            k_total,
        )],
    );
    let pat_power = pat.power(&model);
    let single_path = xy_corner_power(2 * p_prime, k_total, &model);
    for kind in HeuristicKind::ALL {
        let p = kind.route(&cs, &model).power(&cs, &model).unwrap().total();
        assert!(
            (p - single_path).abs() < 1e-9,
            "{kind}: any single path of one flow costs (2p−2)K^α, got {p}"
        );
        assert!(
            pat_power < p,
            "{kind} ({p}) beat the max-MP pattern ({pat_power})"
        );
    }
    // The proof's explicit bound: P_max ≤ 4·K^α·(2 − 1/p').
    let proof_bound = 4.0 * k_total.powi(3) * (2.0 - 1.0 / p_prime as f64);
    assert!(pat_power <= proof_bound + 1e-9);
}

#[test]
fn frank_wolfe_confirms_fig4_is_within_a_constant_of_optimal() {
    // The Fig. 4 pattern is a *bounding* construction, not the optimum (it
    // funnels all K through one corner link — the k=1 term of the proof's
    // Σ k·h_k^α). Frank–Wolfe approximates the true max-MP optimum; the
    // pattern must sit above it but within the proof's constant (the gap is
    // O(1), independent of p).
    let model = PowerModel::theory(3.0);
    let k_total = 1.0;
    let mut gaps = Vec::new();
    for p_prime in [2usize, 3, 4] {
        let mesh = Mesh::new(2 * p_prime, 2 * p_prime);
        let cs = CommSet::new(
            mesh,
            vec![Comm::new(
                Coord::new(0, 0),
                Coord::new(2 * p_prime - 1, 2 * p_prime - 1),
                k_total,
            )],
        );
        let fw = frank_wolfe(&cs, &model, 500);
        let pat = fig4_pattern(p_prime, k_total).power(&model);
        assert!(fw.lower_bound <= pat + 1e-9);
        assert!(
            fw.dynamic_power <= pat + 1e-9,
            "the optimum is below the pattern"
        );
        gaps.push(pat / fw.dynamic_power);
    }
    // Constant-factor gap: bounded and not growing with p.
    for g in &gaps {
        assert!(*g < 10.0, "pattern/optimum gap {g} too large");
    }
    assert!(
        gaps.last().unwrap() / gaps.first().unwrap() < 1.8,
        "gap grows with p: {gaps:?}"
    );
}

#[test]
fn np_reduction_instances_route_like_the_proof_says() {
    // YES instance: the proof routing is feasible and the generic solver
    // machinery agrees an s-MP solution exists.
    let a = [2u64, 3, 1, 2];
    let inst = reduction_instance(&a, 2);
    assert!(inst.horizontal_headroom_ok());
    let chosen = partition_exists(&a).expect("2+3+1+2 = 8 partitions into 4+4");
    let routing = routing_from_partition(&inst, &chosen);
    assert!(routing.is_structurally_valid(&inst.cs, 2));
    assert!(routing.is_feasible(&inst.cs, &inst.model()));

    // The same integers shifted to kill every partition: no feasible
    // proof-shaped routing remains.
    let bad = [2u64, 3, 1, 1];
    let inst = reduction_instance(&bad, 2);
    assert!(partition_exists(&bad).is_none());
    assert!(!pamr::theory::reduction_feasible(&inst));
}
