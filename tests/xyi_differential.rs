//! Differential oracle for the queue-driven XY improver and the indexed
//! Improved greedy.
//!
//! Both rewritten improvement loops (`pamr_routing::XyImprover` on the
//! shared `loadq` max-load index, `pamr_routing::ImprovedGreedy` on the
//! per-group min-load index) promise **bit-identical** behaviour to their
//! literal full-scan references (`xyi::reference`, `ig::reference`): same
//! routings, same load maps, and — through the campaign — byte-identical
//! §6.4 summary reports. This suite enforces the contract the same three
//! ways `tests/pr_differential.rs` pins the banded Path-Remover:
//!
//! 1. a deterministic sweep over §6-style workloads (uniform and
//!    length-targeted draws, synthetic task graphs) across mesh sizes and
//!    communication counts;
//! 2. shrinking property tests over randomized instances (replay any
//!    failure with `PAMR_PROPTEST_SEED=<seed>`);
//! 3. a whole-campaign run with both engines switched behind
//!    [`HeuristicKind::Xyi`] / [`HeuristicKind::Ig`] via an explicit
//!    [`EngineConfig`], asserting the rendered summary report byte for
//!    byte.
//!
//! [`HeuristicKind::Xyi`]: pamr_routing::HeuristicKind::Xyi
//! [`HeuristicKind::Ig`]: pamr_routing::HeuristicKind::Ig
//! [`EngineConfig`]: pamr_routing::EngineConfig

use pamr::prelude::*;
use pamr::routing::{EngineConfig, EngineSel, ReferenceImprovedGreedy, ReferenceXyImprover};
use pamr::sim::testutil;
use proptest::prelude::*;

/// Routes `cs` with the rewritten engine and its reference (explicitly,
/// independent of the process-global selectors) and asserts identical
/// outcomes — routings, bit-identical load maps and derived powers.
fn assert_engines_agree(cs: &CommSet, label: &str) {
    let model = PowerModel::kim_horowitz();
    let mut scratch = RouteScratch::new();
    let pairs: [(Routing, Routing, &str); 2] = [
        (
            XyImprover::default().route_queued_with(cs, &model, &mut scratch),
            ReferenceXyImprover::default().route_with(cs, &model, &mut scratch),
            "XYI",
        ),
        (
            ImprovedGreedy::default().route_indexed_with(cs, &model, &mut scratch),
            ReferenceImprovedGreedy::default().route_with(cs, &model, &mut scratch),
            "IG",
        ),
    ];
    for (fast, reference, engine) in &pairs {
        assert_eq!(
            fast, reference,
            "{label}: {engine} diverged from its full-scan oracle"
        );
        // Load maps drive every decision downstream (feasibility, §6.4
        // statistics), so pin them bit for bit, not just structurally.
        let lf = fast.loads(cs);
        let lr = reference.loads(cs);
        for l in cs.mesh().links() {
            assert_eq!(
                lf.get(l).to_bits(),
                lr.get(l).to_bits(),
                "{label}: {engine} load of {l} diverged"
            );
        }
        let pf = fast.power(cs, &model).map(|p| p.total().to_bits());
        let pr = reference.power(cs, &model).map(|p| p.total().to_bits());
        assert_eq!(pf.ok(), pr.ok(), "{label}: {engine} power diverged");
    }
}

#[test]
fn uniform_workloads_match_across_mesh_sizes() {
    testutil::uniform_sweep(assert_engines_agree);
}

#[test]
fn length_targeted_workloads_match() {
    testutil::length_targeted_sweep(assert_engines_agree);
}

#[test]
fn task_graph_workloads_match() {
    testutil::task_graph_sweep(assert_engines_agree);
}

/// Random instances mixing all quadrants, straight lines, duplicates and
/// core-local (zero-length) communications on meshes up to 8×8.
fn any_instance() -> impl Strategy<Value = CommSet> {
    (1usize..=8, 1usize..=8)
        .prop_flat_map(|(p, q)| {
            let comms = prop::collection::vec(((0..p, 0..q), (0..p, 0..q), 1u32..=3500), 1..=24);
            (Just((p, q)), comms)
        })
        .prop_map(|((p, q), comms)| {
            CommSet::new(
                Mesh::new(p, q),
                comms
                    .into_iter()
                    .map(|((a, b), (c, d), w)| {
                        Comm::new(Coord::new(a, b), Coord::new(c, d), w as f64)
                    })
                    .collect(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn queued_xyi_equals_reference_on_any_instance(cs in any_instance()) {
        let model = PowerModel::kim_horowitz();
        let mut scratch = RouteScratch::new();
        let queued = XyImprover::default().route_queued_with(&cs, &model, &mut scratch);
        let reference = ReferenceXyImprover::default().route_with(&cs, &model, &mut scratch);
        prop_assert_eq!(queued, reference);
    }

    #[test]
    fn indexed_ig_equals_reference_on_any_instance(cs in any_instance()) {
        let model = PowerModel::kim_horowitz();
        let mut scratch = RouteScratch::new();
        let indexed = ImprovedGreedy::default().route_indexed_with(&cs, &model, &mut scratch);
        let reference = ReferenceImprovedGreedy::default().route_with(&cs, &model, &mut scratch);
        prop_assert_eq!(indexed, reference);
    }

    #[test]
    fn queued_xyi_loads_are_bit_identical(cs in any_instance()) {
        // Load maps drive the link-examination order, so bit-identity here
        // is the mechanism behind routing identity — check it directly.
        let model = PowerModel::kim_horowitz();
        let mut scratch = RouteScratch::new();
        let queued = XyImprover::default().route_queued_with(&cs, &model, &mut scratch);
        let reference = ReferenceXyImprover::default().route_with(&cs, &model, &mut scratch);
        let lq = queued.loads(&cs);
        let lr = reference.loads(&cs);
        for l in cs.mesh().links() {
            prop_assert_eq!(
                lq.get(l).to_bits(),
                lr.get(l).to_bits(),
                "load of {} diverged", l
            );
        }
    }
}

#[test]
fn campaign_summary_is_byte_identical_across_engines() {
    // The §6.4 acceptance contract: a seeded campaign rendered through the
    // rewritten engines and through the reference oracles must print the
    // same bytes. Both engines are swapped at once behind
    // `HeuristicKind::Xyi` / `HeuristicKind::Ig` with an explicit
    // `EngineConfig` pinned onto every campaign worker, so nothing leaks
    // into the other tests in this binary.
    let mesh = pamr::sim::paper_mesh();
    let model = pamr::sim::paper_model();
    let (trials, seed) = (1, 0x1D1FF);
    let fast =
        pamr::sim::summary::Summary::run_with(&mesh, &model, trials, seed, EngineConfig::LIVE)
            .render_report();
    let reference = pamr::sim::summary::Summary::run_with(
        &mesh,
        &model,
        trials,
        seed,
        EngineConfig::LIVE
            .with_xyi(EngineSel::Reference)
            .with_ig(EngineSel::Reference),
    )
    .render_report();
    assert!(!fast.is_empty());
    assert_eq!(
        fast, reference,
        "campaign summary diverged between XYI/IG engines"
    );
}
