//! Differential oracle for the s-MP rounding heuristic — the §7
//! "multi-path" future-work item.
//!
//! Under the theoretical model of §4 (continuous frequency scaling, no
//! leakage — the regime where the Frank–Wolfe duality gap certifies a
//! lower bound on **any** Manhattan routing, single- or multi-path), the
//! rounder promises a sandwich on every shared §6 sweep point:
//!
//! ```text
//! FW_bound  ≤  P(s-MP)  ≤  min over the 1-MP heuristics,   s ∈ {2, 4}
//! ```
//!
//! The left inequality holds because the stripped routing is itself a
//! Manhattan routing; the right one holds by construction (the rounded
//! candidate is played against the full [`Best`] portfolio). This suite
//! pins both on the shared sweeps, and adds shrinking property tests for
//! structural path validity: at most `s` Manhattan-monotone paths per
//! communication, weights summing to the communication's demand, and a
//! bit-reproducible routing.

use pamr::prelude::*;
use pamr::sim::testutil;
use proptest::prelude::*;

/// Iteration budget shared by the explicit bound run and the rounder. The
/// duality gap certifies a valid lower bound at **any** budget (more
/// iterations only tighten it), so a modest one keeps the sweep fast in
/// debug builds.
const FW_ITERS: usize = 48;

/// Routes `cs` with the 1-MP portfolio and the s-MP rounder for
/// s ∈ {2, 4} and asserts the power sandwich plus structural validity.
fn assert_sandwich(cs: &CommSet, label: &str) {
    let model = PowerModel::theory(3.0);
    let fw = frank_wolfe(cs, &model, FW_ITERS);
    // Unbounded capacity: every single-path heuristic is feasible, so the
    // minimum ranges over all six policies.
    let min1 = HeuristicKind::ALL
        .iter()
        .map(|k| k.route(cs, &model).power(cs, &model).unwrap().total())
        .fold(f64::INFINITY, f64::min);
    let eps = 1e-9 * min1.max(1.0);
    for s in [2usize, 4] {
        let r = FwMp::new(s).with_iterations(FW_ITERS).route(cs, &model);
        assert!(
            r.is_structurally_valid(cs, s),
            "{label} s={s}: rounded routing is structurally invalid"
        );
        let p = r.power(cs, &model).unwrap().total();
        assert!(
            fw.lower_bound <= p + eps,
            "{label} s={s}: P(s-MP) = {p} beats the certified bound {}",
            fw.lower_bound
        );
        assert!(
            p <= min1 + eps,
            "{label} s={s}: P(s-MP) = {p} lost to the 1-MP portfolio at {min1}"
        );
    }
}

#[test]
fn sandwich_holds_on_uniform_workloads() {
    testutil::uniform_sweep(assert_sandwich);
}

#[test]
fn sandwich_holds_on_length_targeted_workloads() {
    testutil::length_targeted_sweep(assert_sandwich);
}

#[test]
fn sandwich_holds_on_task_graph_workloads() {
    testutil::task_graph_sweep(assert_sandwich);
}

/// Random instances mixing all quadrants, straight lines, duplicates and
/// core-local communications on meshes up to 6×6.
fn any_instance() -> impl Strategy<Value = CommSet> {
    (1usize..=6, 1usize..=6)
        .prop_flat_map(|(p, q)| {
            let comms = prop::collection::vec(((0..p, 0..q), (0..p, 0..q), 1u32..=3500), 1..=12);
            (Just((p, q)), comms)
        })
        .prop_map(|((p, q), comms)| {
            CommSet::new(
                Mesh::new(p, q),
                comms
                    .into_iter()
                    .map(|((a, b), (c, d), w)| {
                        Comm::new(Coord::new(a, b), Coord::new(c, d), w as f64)
                    })
                    .collect(),
            )
        })
}

/// Structural contract shared by both s-MP constructions: ≤ `s` strictly
/// positive Manhattan-monotone paths per communication, weights summing to
/// the communication's demand.
fn check_paths(cs: &CommSet, r: &Routing, s: usize) -> Result<(), String> {
    prop_assert!(r.is_structurally_valid(cs, s));
    prop_assert!(r.max_paths_per_comm() <= s);
    for (i, c) in cs.comms().iter().enumerate() {
        let flows = r.flows(i);
        let sum: f64 = flows.iter().map(|(_, w)| w).sum();
        prop_assert!(
            (sum - c.weight).abs() <= 1e-9 * c.weight.max(1.0),
            "comm {}: flow sum {} != weight {}",
            i,
            sum,
            c.weight
        );
        for (p, w) in flows {
            prop_assert!(p.is_manhattan(cs.mesh()));
            prop_assert!(*w > 0.0);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn split_mp_paths_are_valid_on_any_instance(cs in any_instance(), s in 1usize..=4) {
        let model = PowerModel::theory(3.0);
        let r = SplitMp::new(PathRemover, s).route(&cs, &model);
        check_paths(&cs, &r, s)?;
        // Routing again must reproduce the routing bit for bit.
        prop_assert_eq!(&r, &SplitMp::new(PathRemover, s).route(&cs, &model));
    }

    #[test]
    fn fw_mp_paths_are_valid_on_any_instance(cs in any_instance(), s in 1usize..=4) {
        let model = PowerModel::theory(3.0);
        let fw_mp = || FwMp::new(s).with_iterations(FW_ITERS).route(&cs, &model);
        let r = fw_mp();
        check_paths(&cs, &r, s)?;
        prop_assert_eq!(&r, &fw_mp());
    }
}
