//! Differential oracle for the banded Path-Remover.
//!
//! The banded engine (`pamr_routing::PathRemover`) promises **bit-identical**
//! behaviour to the full-sweep reference (`pr::reference`): same routings,
//! same structured `PrError`s, same load maps, and — through the campaign —
//! byte-identical §6.4 summary reports. This suite enforces the contract
//! three ways:
//!
//! 1. a deterministic sweep over §6-style workloads (uniform and
//!    length-targeted draws, synthetic task graphs) across mesh sizes and
//!    communication counts;
//! 2. shrinking property tests over randomized instances (replay any
//!    failure with `PAMR_PROPTEST_SEED=<seed>`);
//! 3. a whole-campaign run with the engine switched behind
//!    [`HeuristicKind::Pr`] via an explicit [`EngineConfig`], asserting the
//!    rendered summary report byte for byte.
//!
//! [`HeuristicKind::Pr`]: pamr_routing::HeuristicKind::Pr
//! [`EngineConfig`]: pamr_routing::EngineConfig

use pamr::prelude::*;
use pamr::routing::{EngineConfig, EngineSel, ReferencePathRemover};
use pamr::sim::testutil;
use proptest::prelude::*;

/// Routes `cs` with both engines (explicitly, independent of the
/// process-global selector) and asserts identical outcomes — routings and
/// `PrError`s alike.
fn assert_engines_agree(cs: &CommSet, label: &str) {
    let model = PowerModel::kim_horowitz();
    let mut scratch = RouteScratch::new();
    let banded = PathRemover.try_route_banded_with(cs, &model, &mut scratch);
    let reference = ReferencePathRemover.try_route_with(cs, &model, &mut scratch);
    assert_eq!(
        banded, reference,
        "{label}: banded PR diverged from the full-sweep oracle"
    );
    // Feasibility and power are derived from the routing, but checking them
    // here pins the exact quantities the campaign statistics consume.
    if let (Ok(b), Ok(r)) = (&banded, &reference) {
        let pb = b.power(cs, &model).map(|p| p.total().to_bits());
        let pr_ = r.power(cs, &model).map(|p| p.total().to_bits());
        assert_eq!(pb.ok(), pr_.ok(), "{label}: power diverged");
    }
}

#[test]
fn uniform_workloads_match_across_mesh_sizes() {
    testutil::uniform_sweep(assert_engines_agree);
}

#[test]
fn length_targeted_workloads_match() {
    testutil::length_targeted_sweep(assert_engines_agree);
}

#[test]
fn task_graph_workloads_match() {
    testutil::task_graph_sweep(assert_engines_agree);
}

/// Random instances mixing all quadrants, straight lines, duplicates and
/// core-local (zero-length) communications on meshes up to 8×8.
fn any_instance() -> impl Strategy<Value = CommSet> {
    (1usize..=8, 1usize..=8)
        .prop_flat_map(|(p, q)| {
            let comms = prop::collection::vec(((0..p, 0..q), (0..p, 0..q), 1u32..=3500), 1..=24);
            (Just((p, q)), comms)
        })
        .prop_map(|((p, q), comms)| {
            CommSet::new(
                Mesh::new(p, q),
                comms
                    .into_iter()
                    .map(|((a, b), (c, d), w)| {
                        Comm::new(Coord::new(a, b), Coord::new(c, d), w as f64)
                    })
                    .collect(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn banded_pr_equals_reference_on_any_instance(cs in any_instance()) {
        let model = PowerModel::kim_horowitz();
        let mut scratch = RouteScratch::new();
        let banded = PathRemover.try_route_banded_with(&cs, &model, &mut scratch);
        let reference = ReferencePathRemover.try_route_with(&cs, &model, &mut scratch);
        prop_assert_eq!(banded, reference);
    }

    #[test]
    fn banded_pr_loads_are_bit_identical(cs in any_instance()) {
        // Load maps drive the removal order, so bit-identity here is the
        // mechanism behind routing identity — check it directly.
        let model = PowerModel::kim_horowitz();
        let mut scratch = RouteScratch::new();
        let banded = PathRemover.try_route_banded_with(&cs, &model, &mut scratch);
        let reference = ReferencePathRemover.try_route_with(&cs, &model, &mut scratch);
        if let (Ok(b), Ok(r)) = (banded, reference) {
            let lb = b.loads(&cs);
            let lr = r.loads(&cs);
            for l in cs.mesh().links() {
                prop_assert_eq!(
                    lb.get(l).to_bits(),
                    lr.get(l).to_bits(),
                    "load of {} diverged", l
                );
            }
        }
    }
}

#[test]
fn campaign_summary_is_byte_identical_across_engines() {
    // The §6.4 acceptance contract: a seeded campaign rendered through the
    // banded engine and through the reference oracle must print the same
    // bytes. The engine is swapped behind `HeuristicKind::Pr` with an
    // explicit `EngineConfig` pinned onto every campaign worker, so nothing
    // leaks into the other tests in this binary.
    let mesh = pamr::sim::paper_mesh();
    let model = pamr::sim::paper_model();
    let (trials, seed) = (1, 0xD1FF);
    let banded =
        pamr::sim::summary::Summary::run_with(&mesh, &model, trials, seed, EngineConfig::LIVE)
            .render_report();
    let reference = pamr::sim::summary::Summary::run_with(
        &mesh,
        &model,
        trials,
        seed,
        EngineConfig::LIVE.with_pr(EngineSel::Reference),
    )
    .render_report();
    assert!(!banded.is_empty());
    assert_eq!(
        banded, reference,
        "campaign summary diverged between PR engines"
    );
}
