//! End-to-end: workload generation → heuristic routing → packet-level NoC
//! execution, checking that the flow-level feasibility verdict predicts the
//! packet-level behaviour.

use pamr::nocsim::{simulate, SimConfig};
use pamr::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn feasible_routings_sustain_their_rates() {
    let mesh = Mesh::new(8, 8);
    let model = PowerModel::kim_horowitz();
    let gen = UniformWorkload::new(15, 100.0, 1500.0);
    let cfg = SimConfig {
        horizon_us: 100.0,
        packet_bits: 512.0,
    };
    let mut checked = 0;
    for seed in 0..6u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cs = gen.generate(&mesh, &mut rng);
        let best = Best::default().route(&cs, &model);
        if best.is_feasible() {
            let rep = simulate(&cs, &best.routing, &model, &cfg);
            assert!(!rep.clamped, "seed {seed}: feasible routing clamped");
            // Transient queueing at high (but ≤ 100%) utilisation leaves a
            // bounded residual queue — tens of packets at most. Divergence
            // (an over-capacity link) grows linearly with the horizon and
            // lands far above this.
            assert!(
                rep.sustains(15.0),
                "seed {seed}: backlog {} µs on a feasible routing",
                rep.max_backlog_us
            );
            // Every flow delivered packets.
            assert!(rep.flows.iter().all(|f| f.delivered > 0));
            checked += 1;
        }
    }
    assert!(checked >= 4, "too few feasible instances to be meaningful");
}

#[test]
fn infeasible_xy_shows_divergence_where_manhattan_sustains() {
    // Craft an instance where XY is infeasible but Manhattan routing works:
    // two heavy flows from the same source to the same sink.
    let mesh = Mesh::new(8, 8);
    let model = PowerModel::kim_horowitz();
    let cs = CommSet::new(
        mesh,
        vec![
            Comm::new(Coord::new(1, 1), Coord::new(6, 6), 3000.0),
            Comm::new(Coord::new(1, 1), Coord::new(6, 6), 3000.0),
        ],
    );
    let cfg = SimConfig::default();
    assert!(!xy_routing(&cs).is_feasible(&cs, &model));
    let xy_rep = simulate(&cs, &xy_routing(&cs), &model, &cfg);
    assert!(xy_rep.clamped);
    assert!(xy_rep.max_backlog_us > 20.0);

    let pr = PathRemover.route(&cs, &model);
    assert!(pr.is_feasible(&cs, &model));
    let pr_rep = simulate(&cs, &pr, &model, &cfg);
    assert!(!pr_rep.clamped);
    assert!(pr_rep.sustains(3.0));
    assert!(pr_rep.mean_latency_us() < xy_rep.mean_latency_us());
}

#[test]
fn task_graph_apps_route_and_execute() {
    // The multi-application scenario end to end.
    let mesh = Mesh::new(8, 8);
    let model = PowerModel::kim_horowitz();
    let fft = TaskGraph::butterfly(3, 600.0);
    let pipe = TaskGraph::pipeline(6, 1200.0);
    let m1 = Mapping::row_major(&mesh, 8);
    let mut rng = SmallRng::seed_from_u64(5);
    let m2 = Mapping::random(&mesh, 6, &mut rng);
    let cs = pamr::workload::taskgraph::merge_applications(&mesh, &[(&fft, &m1), (&pipe, &m2)]);
    let best = Best::default().route(&cs, &model);
    assert!(best.power.unwrap() > 0.0);
    let rep = simulate(&cs, &best.routing, &model, &SimConfig::default());
    assert!(rep.sustains(3.0));
    assert!(rep.energy_nj > 0.0);
}
