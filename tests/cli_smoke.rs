//! Smoke test for the `pamr` command-line front end: generate a random
//! instance on a tiny mesh, route it with every heuristic name the CLI
//! accepts, and check the JSON report parses.

use std::process::Command;

fn pamr(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_pamr"))
        .args(args)
        .output()
        .expect("failed to spawn pamr");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn random_then_route_round_trip() {
    let dir = std::env::temp_dir().join("pamr_cli_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let inst = dir.join("inst.json");

    let (json, stderr, ok) = pamr(&[
        "random", "--mesh", "4x4", "--n", "6", "--wmin", "100", "--wmax", "900", "--seed", "11",
    ]);
    assert!(ok, "pamr random failed: {stderr}");
    std::fs::write(&inst, &json).unwrap();

    // The generated instance is valid JSON for a 4×4 CommSet.
    let cs: pamr::routing::CommSet = serde_json::from_str(&json).expect("instance parses");
    assert_eq!(cs.len(), 6);

    for heuristic in ["BEST", "XY", "SG", "IG", "TB", "XYI", "PR"] {
        let (out, stderr, ok) = pamr(&[
            "route",
            "--instance",
            inst.to_str().unwrap(),
            "--heuristic",
            heuristic,
        ]);
        assert!(ok, "pamr route --heuristic {heuristic} failed: {stderr}");
        assert!(!out.is_empty(), "route {heuristic} printed nothing");
    }

    // Machine-readable report.
    let (out, stderr, ok) = pamr(&["route", "--instance", inst.to_str().unwrap(), "--json"]);
    assert!(ok, "pamr route --json failed: {stderr}");
    assert!(
        out.trim_start().starts_with('{'),
        "--json must print a JSON object, got:\n{out}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_merge_round_trip_matches_single_process() {
    let dir = std::env::temp_dir().join("pamr_cli_shard_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let part = |i: usize| dir.join(format!("part{i}.json"));

    // Two shards of a tiny campaign...
    for i in 0..2 {
        let (_, stderr, ok) = pamr(&[
            "shard",
            "--shard",
            &format!("{i}/2"),
            "--trials",
            "1",
            "--seed",
            "9",
            "--out",
            part(i).to_str().unwrap(),
        ]);
        assert!(ok, "pamr shard {i}/2 failed: {stderr}");
    }
    // ...merge to the single-process report.
    let (merged, stderr, ok) = pamr(&[
        "merge",
        part(0).to_str().unwrap(),
        part(1).to_str().unwrap(),
    ]);
    assert!(ok, "pamr merge failed: {stderr}");
    // One shard alone must be rejected with a structured message.
    let (single, one_shard_ok) = {
        let (_, stderr, ok) = pamr(&["merge", part(0).to_str().unwrap()]);
        (stderr, ok)
    };
    assert!(!one_shard_ok, "merging an incomplete shard set must fail");
    assert!(
        single.contains("missing shard partial"),
        "unexpected merge error: {single}"
    );
    // The merged report is the §6.4 summary.
    assert!(merged.contains("§6.4 summary statistics"), "{merged}");
    assert!(merged.contains("BEST inv-power ratio"), "{merged}");
    assert!(merged.contains("pooled over"), "{merged}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn demo_runs() {
    let (out, stderr, ok) = pamr(&["demo"]);
    assert!(ok, "pamr demo failed: {stderr}");
    assert!(
        out.contains("BEST"),
        "demo output missing BEST line:\n{out}"
    );
}
