//! Differential oracle for the bi-objective power × latency frontier.
//!
//! Two contracts are pinned here, through the public facade (the same
//! surface `pamr frontier` drives):
//!
//! 1. **Dominance** — no returned Pareto point is dominated by *any* point
//!    any candidate achieves at *any* segment of the sweep (shrinking
//!    property test over random instances, discrete and continuous
//!    scaling alike);
//! 2. **Shard/merge byte-identity** — splitting the ε-constraint sweep
//!    over `--shard i/N` processes and merging the partials renders and
//!    serialises byte-for-byte like the single-process run.

use pamr::prelude::*;
use pamr::routing::frontier::pareto_filter;
use pamr::sim::{merge_frontier, FrontierPartial, FrontierReport, ShardSpec};
use proptest::prelude::*;

/// Random instances on meshes up to 5×5, small enough that the multi-path
/// candidate (a Frank–Wolfe run per instance) stays cheap in debug builds.
fn any_instance() -> impl Strategy<Value = CommSet> {
    (1usize..=5, 1usize..=5)
        .prop_flat_map(|(p, q)| {
            let comms = prop::collection::vec(((0..p, 0..q), (0..p, 0..q), 1u32..=3500), 1..=8);
            (Just((p, q)), comms)
        })
        .prop_map(|((p, q), comms)| {
            CommSet::new(
                Mesh::new(p, q),
                comms
                    .into_iter()
                    .map(|((a, b), (c, d), w)| {
                        Comm::new(Coord::new(a, b), Coord::new(c, d), w as f64)
                    })
                    .collect(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn no_returned_point_is_dominated(
        cs in any_instance(),
        // The stub strategy set has no `select`: draw small ints instead.
        multi_path in 0usize..=1,
        discrete in 0usize..=1,
    ) {
        let split = 2 * multi_path;
        let model = if discrete == 1 {
            PowerModel::kim_horowitz()
        } else {
            PowerModel::kim_horowitz_continuous()
        };
        let problem = FrontierProblem { cs: &cs, model: &model, segments: 5, split };
        let pareto = frontier_points(&problem);

        // Every achievable point of the whole sweep, Pareto or not.
        let mut scratch = RouteScratch::new();
        let candidates = problem.candidates(&mut scratch);
        let all: Vec<FrontierPoint> = problem
            .segment_budgets(&candidates)
            .into_iter()
            .flat_map(|seg| problem.solve_segment(&candidates, seg))
            .collect();

        for p in &pareto {
            prop_assert!(
                all.iter().any(|q| q == p),
                "returned point {:?} was never achieved by the sweep", p
            );
            for q in &all {
                prop_assert!(
                    !(q.latency <= p.latency && q.power < p.power),
                    "returned point {:?} is dominated by {:?}", p, q
                );
            }
        }
        // The filter is idempotent and order-canonical.
        prop_assert_eq!(&pareto, &pareto_filter(all));
    }
}

#[test]
fn sharded_sweep_merges_byte_identically() {
    // The `pamr frontier --shard i/N` contract, end to end through the
    // facade: partials computed by separate "processes" (fresh state each)
    // merge into the same rendered report, CSV and JSON as one process.
    let mesh = Mesh::new(6, 6);
    let model = PowerModel::kim_horowitz();
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(7);
    let cs = UniformWorkload::new(14, 100.0, 1200.0).generate(&mesh, &mut rng);
    let (segments, split) = (12, 2);
    let full = FrontierReport::compute(&cs, &model, segments, split);
    assert!(
        full.check().is_ok(),
        "reference frontier fails its own check"
    );
    assert!(!full.pareto.is_empty(), "instance should be routable");
    for count in [2usize, 3] {
        let partials: Vec<FrontierPartial> = (0..count)
            .map(|i| {
                let json =
                    FrontierPartial::run(&cs, &model, segments, split, ShardSpec::new(i, count))
                        .to_json();
                // Round-trip through JSON exactly as the CLI does.
                FrontierPartial::from_json(&json).expect("partial round-trips")
            })
            .collect();
        let merged = merge_frontier(&partials).expect("complete shard set merges");
        let reference = FrontierReport {
            shard_count: count,
            ..full.clone()
        };
        assert_eq!(
            merged.render(),
            reference.render(),
            "{count}-way render diverged"
        );
        assert_eq!(
            merged.to_csv(),
            reference.to_csv(),
            "{count}-way CSV diverged"
        );
        assert_eq!(
            merged.to_json(),
            reference.to_json(),
            "{count}-way JSON diverged"
        );
    }
}
