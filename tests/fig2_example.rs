//! Integration test: the Figure 2 worked example, end to end through the
//! public facade API (exact paper numbers 128 / 56 / 32).

use pamr::prelude::*;

fn fig2_instance() -> CommSet {
    CommSet::new(
        Mesh::new(2, 2),
        vec![
            Comm::new(Coord::new(0, 0), Coord::new(1, 1), 1.0),
            Comm::new(Coord::new(0, 0), Coord::new(1, 1), 3.0),
        ],
    )
}

#[test]
fn xy_power_is_128() {
    let cs = fig2_instance();
    let model = PowerModel::fig2();
    let p = xy_routing(&cs).power(&cs, &model).unwrap().total();
    assert!((p - 128.0).abs() < 1e-9);
}

#[test]
fn best_single_path_power_is_56() {
    let cs = fig2_instance();
    let model = PowerModel::fig2();
    // The exact 1-MP optimum…
    let (_, opt) = optimal_single_path(&cs, &model, 1 << 20).unwrap().unwrap();
    assert!((opt - 56.0).abs() < 1e-9);
    // …and the heuristic portfolio reaches it.
    let best = Best::default().route(&cs, &model);
    let power = best.power.expect("fig2 is routable");
    assert!((power - 56.0).abs() < 1e-9);
    assert!(best.routing.is_structurally_valid(&cs, 1));
}

#[test]
fn two_path_split_reaches_32() {
    let cs = fig2_instance();
    let model = PowerModel::fig2();
    let src = Coord::new(0, 0);
    let snk = Coord::new(1, 1);
    let mp2 = Routing::multi(vec![
        vec![(Path::xy(src, snk), 1.0)],
        vec![(Path::xy(src, snk), 1.0), (Path::yx(src, snk), 2.0)],
    ]);
    assert!(mp2.is_structurally_valid(&cs, 2));
    let p = mp2.power(&cs, &model).unwrap().total();
    assert!((p - 32.0).abs() < 1e-9);
}

#[test]
fn frank_wolfe_approaches_the_multipath_optimum() {
    // With both communications merged (same poles), the max-MP optimum is
    // the perfectly balanced 32; Frank–Wolfe must come close from above.
    let cs = fig2_instance();
    let model = PowerModel::fig2();
    let fw = frank_wolfe(&cs, &model, 500);
    assert!(fw.dynamic_power >= 32.0 - 1e-9);
    assert!(fw.dynamic_power < 33.0, "FW at {}", fw.dynamic_power);
    assert!(fw.lower_bound <= 32.0 + 1e-9);
}
