//! Property-based tests (proptest) over random instances: structural
//! invariants every routing policy must uphold regardless of the input.

use pamr::prelude::*;
use proptest::prelude::*;

/// Strategy: a random instance on a small mesh (up to 5×5, up to 8 comms).
fn instance_strategy() -> impl Strategy<Value = CommSet> {
    (2usize..=5, 2usize..=5)
        .prop_flat_map(|(p, q)| {
            let comms = prop::collection::vec(((0..p, 0..q), (0..p, 0..q), 1u32..=400), 1..=8);
            (Just((p, q)), comms)
        })
        .prop_map(|((p, q), comms)| {
            let mesh = Mesh::new(p, q);
            CommSet::new(
                mesh,
                comms
                    .into_iter()
                    .map(|((su, sv), (tu, tv), w)| {
                        Comm::new(Coord::new(su, sv), Coord::new(tu, tv), w as f64 * 10.0)
                    })
                    .collect(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_policy_returns_structurally_valid_single_paths(cs in instance_strategy()) {
        let model = PowerModel::continuous(1.0, 1.0, 2.5, f64::INFINITY);
        for kind in HeuristicKind::ALL {
            let r = kind.route(&cs, &model);
            prop_assert!(r.is_structurally_valid(&cs, 1), "{kind} invalid");
            // Paths are shortest: every path length equals the Manhattan
            // distance of its communication.
            for (i, c) in cs.comms().iter().enumerate() {
                prop_assert_eq!(r.path(i).len(), c.len());
            }
        }
    }

    #[test]
    fn load_conservation_for_single_path_routings(cs in instance_strategy()) {
        let model = PowerModel::continuous(0.0, 1.0, 3.0, f64::INFINITY);
        for kind in HeuristicKind::ALL {
            let r = kind.route(&cs, &model);
            let loads = r.loads(&cs);
            let expected: f64 = cs.comms().iter().map(|c| c.weight * c.len() as f64).sum();
            prop_assert!((loads.total() - expected).abs() < 1e-6 * expected.max(1.0),
                "{}: total load {} != Σ δ·ℓ = {}", kind, loads.total(), expected);
        }
    }

    #[test]
    fn best_never_worse_than_xy(cs in instance_strategy()) {
        // Uncapacitated: XY always feasible, so BEST exists and is ≤ XY.
        let model = PowerModel::continuous(1.0, 1.0, 3.0, f64::INFINITY);
        let p_xy = xy_routing(&cs).power(&cs, &model).unwrap().total();
        let best = Best::default().route(&cs, &model).power.unwrap();
        prop_assert!(best <= p_xy + 1e-9 * p_xy.max(1.0));
    }

    #[test]
    fn feasibility_is_monotone_in_capacity(cs in instance_strategy()) {
        // If a routing is feasible at capacity C it stays feasible at 2C.
        let tight = PowerModel::continuous(0.0, 1.0, 3.0, 800.0);
        let loose = PowerModel::continuous(0.0, 1.0, 3.0, 1600.0);
        for kind in HeuristicKind::ALL {
            let r = kind.route(&cs, &tight);
            if r.is_feasible(&cs, &tight) {
                prop_assert!(r.is_feasible(&cs, &loose), "{kind} lost feasibility");
            }
        }
    }

    #[test]
    fn frank_wolfe_dominates_single_path_and_bounds_hold(cs in instance_strategy()) {
        let model = PowerModel::continuous(0.0, 1.0, 3.0, f64::INFINITY);
        let fw = frank_wolfe(&cs, &model, 60);
        prop_assert!(fw.routing.is_structurally_valid(&cs, usize::MAX));
        prop_assert!(fw.lower_bound <= fw.dynamic_power + 1e-6 * fw.dynamic_power.max(1.0));
        // The multi-path *optimum* is never worse than the best single
        // path; Frank–Wolfe approaches it at rate O(1/k), so allow the
        // primal iterate a small convergence margin. The certified lower
        // bound, in contrast, must hold outright.
        let best = Best::default().route(&cs, &model).power.unwrap();
        prop_assert!(fw.dynamic_power <= best * 1.05 + 1e-9,
            "FW {} vs BEST {}", fw.dynamic_power, best);
        prop_assert!(fw.lower_bound <= best + 1e-6 * best.max(1.0));
    }

    #[test]
    fn xy_and_yx_agree_on_power_for_straight_comms(
        u in 0usize..4, len in 1usize..4, w in 1u32..100
    ) {
        // Straight-line communications leave no routing freedom.
        let mesh = Mesh::new(4, 5);
        let cs = CommSet::new(
            mesh,
            vec![Comm::new(Coord::new(u, 0), Coord::new(u, len), w as f64)],
        );
        let model = PowerModel::continuous(0.5, 1.0, 3.0, f64::INFINITY);
        let a = xy_routing(&cs).power(&cs, &model).unwrap().total();
        let b = yx_routing(&cs).power(&cs, &model).unwrap().total();
        prop_assert!((a - b).abs() < 1e-12);
        for kind in HeuristicKind::ALL {
            let p = kind.route(&cs, &model).power(&cs, &model).unwrap().total();
            prop_assert!((p - a).abs() < 1e-9, "{kind} differs on a forced path");
        }
    }
}
