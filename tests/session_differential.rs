//! Session-replay differential oracle for the incremental re-routing
//! session behind `pamr serve`.
//!
//! A [`RoutingSession`] promises that a long sequence of `add_comm` /
//! `remove_comm` mutations leaves it in the same state a **batch** route
//! of the surviving communications would produce:
//!
//! 1. in [`RepairMode::Full`] the match is **bit-exact** — power
//!    breakdown, per-link loads and the resident max-load index all equal
//!    the batch heuristic run on `live_comm_set()`;
//! 2. in the default [`RepairMode::Bounded`] the incremental result must
//!    stay within a gated factor of the batch power (both directions),
//!    never be infeasible where the batch route is feasible (the session
//!    escalates to a full re-route before accepting an infeasible state),
//!    and keep its resident load/queue indices bit-identical to a naive
//!    recomputation from the live paths.
//!
//! Scripts replay the shared §6-style sweeps of [`pamr::sim::testutil`]
//! (the same families that pin the PR and XYI engines) with seeded
//! interleaved removals, plus shrinking property tests over arbitrary
//! instances (replay failures with `PAMR_PROPTEST_SEED=<seed>`).

use pamr::prelude::*;
use pamr::routing::{RepairMode, RoutingSession, SessionConfig, SlotId};
use pamr::sim::testutil;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Bounded repair must stay within this factor of the batch power, in
/// both directions. Measured over the three sweeps the worst observed
/// ratio is ≈1.089 (a 3×5 uniform draw where the band-scoped repair keeps
/// a detour batch XYI unwinds); 1.15 covers that with slack while still
/// failing on anything structurally broken — a lost repair pass shows up
/// as tens of percent, not single digits.
const BOUNDED_POWER_GATE: f64 = 1.15;

/// Replays `cs` as a mutation script: every communication is added in
/// instance order, and after each add a seeded coin removes one of the
/// currently-live communications (~30% of adds trigger a removal). The
/// survivors are whatever the script left resident.
fn run_script(cs: &CommSet, mode: RepairMode, seed: u64) -> RoutingSession {
    let config = SessionConfig {
        heuristic: HeuristicKind::Xyi,
        repair: mode,
        ..Default::default()
    };
    let mut session = RoutingSession::new(*cs.mesh(), PowerModel::kim_horowitz(), config);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut live: Vec<SlotId> = Vec::new();
    for c in cs.comms() {
        live.push(session.add_comm(*c));
        if rng.gen_range(0..100) < 30 {
            let slot = live.swap_remove(rng.gen_range(0..live.len()));
            assert!(session.remove_comm(slot).is_some());
        }
    }
    session
}

/// The batch oracle: the session's own heuristic run from scratch on the
/// surviving communications.
fn batch_of_survivors(session: &RoutingSession) -> (CommSet, Routing) {
    let cs = session.live_comm_set();
    let routing = session.config().heuristic.route(&cs, session.model());
    (cs, routing)
}

fn assert_full_mode_is_bit_exact(cs: &CommSet, label: &str) {
    let session = run_script(cs, RepairMode::Full, 0xF0_0D ^ cs.len() as u64);
    let (live_cs, batch) = batch_of_survivors(&session);
    for l in live_cs.mesh().links() {
        assert_eq!(
            session.loads().get(l).to_bits(),
            batch.loads(&live_cs).get(l).to_bits(),
            "{label}: full-repair load of {l} diverged from batch"
        );
    }
    let sp = session.power();
    let bp = batch.power(&live_cs, session.model());
    assert_eq!(sp.is_ok(), bp.is_ok(), "{label}: feasibility diverged");
    if let (Ok(s), Ok(b)) = (sp, bp) {
        assert_eq!(s.total().to_bits(), b.total().to_bits(), "{label}: power");
        assert_eq!(s.leakage.to_bits(), b.leakage.to_bits(), "{label}: leakage");
        assert_eq!(s.dynamic.to_bits(), b.dynamic.to_bits(), "{label}: dynamic");
        assert_eq!(s.active_links, b.active_links, "{label}: active links");
    }
}

fn assert_bounded_mode_within_gate(cs: &CommSet, label: &str) {
    let session = run_script(cs, RepairMode::default(), 0xF0_0D ^ cs.len() as u64);
    let (live_cs, routing) = session.live_routing();
    assert!(
        routing.is_structurally_valid(&live_cs, 1),
        "{label}: bounded session produced an invalid routing"
    );
    let batch = session.config().heuristic.route(&live_cs, session.model());
    match (session.power(), batch.power(&live_cs, session.model())) {
        (Ok(s), Ok(b)) => {
            let (s, b) = (s.total(), b.total());
            assert!(
                s <= BOUNDED_POWER_GATE * b && b <= BOUNDED_POWER_GATE * s,
                "{label}: bounded power {s:.3} vs batch {b:.3} exceeds the \
                 {BOUNDED_POWER_GATE}x gate"
            );
        }
        (Err(_), Ok(_)) => panic!(
            "{label}: bounded session is infeasible where batch is feasible \
             — the escalation to a full re-route did not fire"
        ),
        // The incremental path may survive where batch XYI fails, and when
        // both are infeasible there is no power to compare.
        (Ok(_), Err(_)) | (Err(_), Err(_)) => {}
    }
}

/// The resident invariant behind both modes: loads and queue keys always
/// equal a naive recomputation from the live paths.
fn assert_indices_consistent(session: &RoutingSession, label: &str) {
    let mesh = *session.mesh();
    let mut naive = LoadMap::new(&mesh);
    for (_, c, p) in session.live() {
        naive.add_path(&mesh, p, c.weight);
    }
    for l in mesh.links() {
        assert_eq!(
            session.loads().get(l).to_bits(),
            naive.get(l).to_bits(),
            "{label}: resident load of {l} desynced"
        );
        assert_eq!(
            session.load_index().get(l).to_bits(),
            if naive.get(l) > 0.0 {
                naive.get(l)
            } else {
                0.0
            }
            .to_bits(),
            "{label}: resident queue key of {l} desynced"
        );
    }
    assert_eq!(session.max_load().to_bits(), naive.max_load().to_bits());
}

#[test]
fn full_mode_replay_is_bit_exact_on_uniform_sweeps() {
    testutil::uniform_sweep(assert_full_mode_is_bit_exact);
}

#[test]
fn full_mode_replay_is_bit_exact_on_length_targeted_sweeps() {
    testutil::length_targeted_sweep(assert_full_mode_is_bit_exact);
}

#[test]
fn full_mode_replay_is_bit_exact_on_task_graphs() {
    testutil::task_graph_sweep(assert_full_mode_is_bit_exact);
}

#[test]
fn bounded_mode_replay_stays_within_gate_on_all_sweeps() {
    testutil::standard_sweep(assert_bounded_mode_within_gate);
}

#[test]
fn bounded_mode_indices_never_desync_on_all_sweeps() {
    testutil::standard_sweep(|cs, label| {
        let session = run_script(cs, RepairMode::default(), 0xF0_0D ^ cs.len() as u64);
        assert_indices_consistent(&session, label);
    });
}

#[test]
fn explicit_reroute_restores_batch_state_after_bounded_drift() {
    // After any amount of bounded drift, one `reroute` request must land
    // the session exactly on the batch routing — that is what lets a
    // client reconcile a long-lived daemon against an offline run.
    testutil::task_graph_sweep(|cs, label| {
        let mut session = run_script(cs, RepairMode::default(), 0xF0_0D ^ cs.len() as u64);
        session.reroute();
        let (live_cs, batch) = batch_of_survivors(&session);
        for l in live_cs.mesh().links() {
            assert_eq!(
                session.loads().get(l).to_bits(),
                batch.loads(&live_cs).get(l).to_bits(),
                "{label}: post-reroute load of {l} diverged from batch"
            );
        }
    });
}

/// Random instances mixing all quadrants, straight lines, duplicates and
/// core-local (zero-length) communications on meshes up to 8×8.
fn any_instance() -> impl Strategy<Value = CommSet> {
    (1usize..=8, 1usize..=8)
        .prop_flat_map(|(p, q)| {
            let comms = prop::collection::vec(((0..p, 0..q), (0..p, 0..q), 1u32..=3500), 1..=24);
            (Just((p, q)), comms)
        })
        .prop_map(|((p, q), comms)| {
            CommSet::new(
                Mesh::new(p, q),
                comms
                    .into_iter()
                    .map(|((a, b), (c, d), w)| {
                        Comm::new(Coord::new(a, b), Coord::new(c, d), w as f64)
                    })
                    .collect(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn full_mode_replay_is_bit_exact_on_any_instance(
        cs in any_instance(),
        seed in 0u64..=u64::MAX,
    ) {
        let session = run_script(&cs, RepairMode::Full, seed);
        let (live_cs, batch) = batch_of_survivors(&session);
        for l in live_cs.mesh().links() {
            prop_assert_eq!(
                session.loads().get(l).to_bits(),
                batch.loads(&live_cs).get(l).to_bits(),
                "load of {} diverged", l
            );
        }
        let sp = session.power().map(|p| p.total().to_bits()).ok();
        let bp = batch.power(&live_cs, session.model()).map(|p| p.total().to_bits()).ok();
        prop_assert_eq!(sp, bp);
    }

    #[test]
    fn bounded_mode_indices_stay_consistent_on_any_instance(
        cs in any_instance(),
        seed in 0u64..=u64::MAX,
    ) {
        let session = run_script(&cs, RepairMode::default(), seed);
        assert_indices_consistent(&session, "proptest instance");
    }
}
