//! Large-mesh differential oracle for the flat-CSR engine family.
//!
//! The CSR-backed hot paths — the banded Path-Remover on the flat band
//! tables, the queue-driven XY improver with the O(1) diagonal flip
//! locator, the indexed Improved greedy, and the shared
//! `CrossingIndex` link→users arena behind all three — promise
//! **bit-identical** behaviour to the full-scan reference engines not
//! just on the 8×8 paper mesh but on the large meshes the `pamr-bench
//! scaling` lane times. This suite pins that contract at both ends of
//! the grid:
//!
//! 1. the full §6-style 8×8-and-below sweeps (the same families
//!    `tests/pr_differential.rs` and `tests/xyi_differential.rs` replay),
//!    run through **all three** engines at once;
//! 2. seeded 64×64 instances — length-targeted traffic like the scaling
//!    lane's, plus a uniform draw — where a band-vs-scan asymmetry that
//!    stays hidden at 8×8 (wide bands, long diagonals, thousands of
//!    crossing rows) would surface;
//! 3. a whole-campaign run with *every* engine flipped to its reference at
//!    once ([`EngineConfig::REFERENCE`]), asserting the rendered §6.4
//!    summary report byte for byte.
//!
//! Replay any failure by its printed label; the sweeps are seeded and
//! deterministic.
//!
//! [`EngineConfig::REFERENCE`]: pamr_routing::EngineConfig::REFERENCE

use pamr::prelude::*;
use pamr::routing::{
    EngineConfig, ReferenceImprovedGreedy, ReferencePathRemover, ReferenceXyImprover,
};
use pamr::sim::testutil;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Routes `cs` through all three CSR-backed engines and their references
/// (explicitly, independent of the process-global selectors) and asserts
/// identical outcomes — routings, bit-identical load maps, and powers.
/// PR may structurally fail (`PrError`); the error must then match too.
fn assert_all_engines_agree(cs: &CommSet, label: &str) {
    let model = PowerModel::kim_horowitz();
    let mut scratch = RouteScratch::new();

    let banded = PathRemover.try_route_banded_with(cs, &model, &mut scratch);
    let reference = ReferencePathRemover.try_route_with(cs, &model, &mut scratch);
    assert_eq!(
        banded, reference,
        "{label}: banded PR diverged from the full-sweep oracle"
    );

    let pairs: [(Routing, Routing, &str); 2] = [
        (
            XyImprover::default().route_queued_with(cs, &model, &mut scratch),
            ReferenceXyImprover::default().route_with(cs, &model, &mut scratch),
            "XYI",
        ),
        (
            ImprovedGreedy::default().route_indexed_with(cs, &model, &mut scratch),
            ReferenceImprovedGreedy::default().route_with(cs, &model, &mut scratch),
            "IG",
        ),
    ];
    for (fast, reference, engine) in &pairs {
        assert_eq!(
            fast, reference,
            "{label}: {engine} diverged from its full-scan oracle"
        );
        // Load maps drive every decision downstream (queue order,
        // feasibility, §6.4 statistics), so pin them bit for bit, not just
        // structurally.
        let lf = fast.loads(cs);
        let lr = reference.loads(cs);
        for l in cs.mesh().links() {
            assert_eq!(
                lf.get(l).to_bits(),
                lr.get(l).to_bits(),
                "{label}: {engine} load of {l} diverged"
            );
        }
        let pf = fast.power(cs, &model).map(|p| p.total().to_bits());
        let pr_ = reference.power(cs, &model).map(|p| p.total().to_bits());
        assert_eq!(pf.ok(), pr_.ok(), "{label}: {engine} power diverged");
    }
}

#[test]
fn all_engines_agree_on_standard_sweeps() {
    testutil::standard_sweep(assert_all_engines_agree);
}

/// A 64×64 instance shaped like the scaling lane's: source/sink pairs at
/// Manhattan distance 8 (bands stay narrow, so memory is linear in the
/// communication count while diagonals grow to length 127).
fn large_mesh_instance(n: usize, seed: u64) -> CommSet {
    let mesh = Mesh::new(64, 64);
    let mut rng = SmallRng::seed_from_u64(seed);
    LengthTargetedWorkload::new(n, 100.0, 800.0, 8).generate(&mesh, &mut rng)
}

#[test]
#[ignore = "large-mesh oracle (~1 min in release): run by the CI determinism job via --include-ignored"]
fn all_engines_agree_on_64x64_length_targeted() {
    let cs = large_mesh_instance(300, 0x5CA1E);
    assert_all_engines_agree(&cs, "64x64 length-targeted n=300");
}

#[test]
#[ignore = "large-mesh oracle (~30 s in release): run by the CI determinism job via --include-ignored"]
fn all_engines_agree_on_64x64_uniform() {
    // Uniform endpoints on a large mesh produce the *wide* bands the
    // length-targeted draws avoid — the stress case for the CSR band
    // tables' row arithmetic. Keep the count small: band area is
    // quadratic in the draw length here, and the reference engines the
    // CSR paths are pinned against rescan every band link per sweep.
    let mesh = Mesh::new(64, 64);
    let mut rng = SmallRng::seed_from_u64(0xB16_CA7);
    let cs = UniformWorkload::new(32, 100.0, 1500.0).generate(&mesh, &mut rng);
    assert_all_engines_agree(&cs, "64x64 uniform n=32");
}

#[test]
fn campaign_summary_is_byte_identical_with_every_engine_flipped() {
    // The §6.4 acceptance contract, strongest form: run the whole campaign
    // on `EngineConfig::REFERENCE` — every engine on its full-scan oracle
    // at once — and demand the same rendered bytes as the all-`Live` run.
    // The engine selection is pinned per campaign worker, so nothing leaks
    // into the other tests in this binary.
    let mesh = pamr::sim::paper_mesh();
    let model = pamr::sim::paper_model();
    let (trials, seed) = (1, 0x5CA_11D6);
    let fast =
        pamr::sim::summary::Summary::run_with(&mesh, &model, trials, seed, EngineConfig::LIVE)
            .render_report();
    let reference =
        pamr::sim::summary::Summary::run_with(&mesh, &model, trials, seed, EngineConfig::REFERENCE)
            .render_report();
    assert!(!fast.is_empty());
    assert_eq!(
        fast, reference,
        "campaign summary diverged with every engine on its reference"
    );
}
