//! JSON round-trips of the public data types (the CLI's interchange
//! format).

use pamr::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn commset_round_trips_through_json() {
    let mesh = Mesh::new(8, 8);
    let mut rng = SmallRng::seed_from_u64(42);
    let cs = UniformWorkload::new(15, 100.0, 2500.0).generate(&mesh, &mut rng);
    let json = serde_json::to_string(&cs).unwrap();
    let back: CommSet = serde_json::from_str(&json).unwrap();
    // Weights may differ in the last ULP through the text round trip;
    // structure must be identical and weights equal to 1e-12 relative.
    assert_eq!(back.len(), cs.len());
    assert_eq!(back.mesh(), cs.mesh());
    for (a, b) in cs.comms().iter().zip(back.comms()) {
        assert_eq!(a.src, b.src);
        assert_eq!(a.snk, b.snk);
        assert!((a.weight - b.weight).abs() <= 1e-12 * a.weight);
    }
}

#[test]
fn routing_round_trips_through_json() {
    let mesh = Mesh::new(5, 5);
    let cs = CommSet::new(
        mesh,
        vec![
            Comm::new(Coord::new(0, 0), Coord::new(4, 4), 1200.0),
            Comm::new(Coord::new(4, 0), Coord::new(0, 4), 800.0),
        ],
    );
    let model = PowerModel::kim_horowitz();
    let r = SplitMp::new(PathRemover, 2).route(&cs, &model);
    let json = serde_json::to_string(&r).unwrap();
    let back: Routing = serde_json::from_str(&json).unwrap();
    assert_eq!(r, back);
    // Power is preserved through the round trip.
    assert_eq!(
        r.power(&cs, &model).unwrap().total(),
        back.power(&cs, &model).unwrap().total()
    );
}

#[test]
fn power_model_round_trips_through_json() {
    // Finite-capacity models round trip exactly. (The theory model's
    // infinite capacity serialises to JSON null and is session-only by
    // design — JSON has no ±inf.)
    for m in [PowerModel::kim_horowitz(), PowerModel::fig2()] {
        let json = serde_json::to_string(&m).unwrap();
        let back: PowerModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}

#[test]
fn hand_written_instance_json_parses() {
    // The format a user would write by hand for the CLI.
    let json = r#"{
        "mesh": {"p": 4, "q": 4},
        "comms": [
            {"src": {"u": 0, "v": 0}, "snk": {"u": 3, "v": 3}, "weight": 1500.0},
            {"src": {"u": 3, "v": 0}, "snk": {"u": 0, "v": 3}, "weight": 900.0}
        ]
    }"#;
    let cs: CommSet = serde_json::from_str(json).unwrap();
    assert_eq!(cs.len(), 2);
    assert_eq!(cs.mesh().rows(), 4);
    let model = PowerModel::kim_horowitz();
    assert!(Best::default().route(&cs, &model).is_feasible());
}
