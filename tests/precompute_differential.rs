//! Differential oracle for the precompute/customize split.
//!
//! The cached engine path (the all-`Live` [`EngineConfig`], the default)
//! hands SG/IG/XYI/PR interned per-endpoint tables — bands,
//! diagonal row intervals, XY paths, sorted orders — instead of rebuilding
//! them per trial. The tables are pure functions of `(mesh, src, snk)`, so
//! caching may only change *speed*, never results. This suite enforces the
//! contract three ways, mirroring `pr_differential.rs`:
//!
//! 1. deterministic sweeps over §6-style workloads, asserting bit-identical
//!    routings and load maps for every heuristic cache-on vs. cache-off;
//! 2. shrinking property tests over randomized instances (replay any
//!    failure with `PAMR_PROPTEST_SEED=<seed>`);
//! 3. a whole-campaign run, asserting the rendered §6.4 summary report
//!    byte for byte across the two engine selections.
//!
//! The engine selection is explicit per [`RouteScratch`] /
//! [`SessionConfig`] / campaign, so the two passes cannot leak into each
//! other — no mutex, no restore-on-panic guard.
//!
//! [`EngineConfig`]: pamr_routing::EngineConfig
//! [`RouteScratch`]: pamr_routing::RouteScratch
//! [`SessionConfig`]: pamr_routing::SessionConfig

use pamr::prelude::*;
use pamr::routing::{EngineConfig, EngineSel, ReferencePathRemover};
use pamr::sim::testutil;
use proptest::prelude::*;

/// The two engine selections under test: the production default (shared
/// precompute) and the literal rebuild-per-trial path.
const CACHED: EngineConfig = EngineConfig::LIVE;
const REBUILD: EngineConfig = EngineConfig::LIVE.with_precompute(EngineSel::Reference);

/// Routes `cs` with every precompute-consuming heuristic under `engine` and
/// returns the exact artifacts the campaign consumes: per-heuristic
/// routings (PR's structured error included) and the bit patterns of IG's
/// load map.
fn route_all(cs: &CommSet, engine: EngineConfig) -> (Vec<Result<Routing, String>>, Vec<u64>) {
    let model = PowerModel::kim_horowitz();
    let mut scratch = RouteScratch::with_engine(engine);
    let mut routings = Vec::new();
    for h in [
        &SimpleGreedy::default() as &dyn Heuristic,
        &ImprovedGreedy::default(),
        &XyImprover::default(),
    ] {
        routings.push(Ok(h.route_with(cs, &model, &mut scratch)));
    }
    routings.push(
        PathRemover
            .try_route_banded_with(cs, &model, &mut scratch)
            .map_err(|e| e.to_string()),
    );
    routings.push(
        ReferencePathRemover
            .try_route_with(cs, &model, &mut scratch)
            .map_err(|e| e.to_string()),
    );
    let ig_loads = {
        let loads = routings[1].as_ref().expect("IG always routes").loads(cs);
        cs.mesh().links().map(|l| loads.get(l).to_bits()).collect()
    };
    (routings, ig_loads)
}

/// Routes `cs` cache-on and cache-off and asserts identical outcomes.
fn assert_cache_is_pure(cs: &CommSet, label: &str) {
    let cached = route_all(cs, CACHED);
    let rebuilt = route_all(cs, REBUILD);
    assert_eq!(
        cached.0, rebuilt.0,
        "{label}: a routing diverged between cached and rebuilt tables"
    );
    assert_eq!(
        cached.1, rebuilt.1,
        "{label}: IG load bits diverged between cached and rebuilt tables"
    );
}

#[test]
fn uniform_workloads_match_across_mesh_sizes() {
    testutil::uniform_sweep(assert_cache_is_pure);
}

#[test]
fn length_targeted_workloads_match() {
    testutil::length_targeted_sweep(assert_cache_is_pure);
}

#[test]
fn task_graph_workloads_match() {
    testutil::task_graph_sweep(assert_cache_is_pure);
}

/// Random instances mixing all quadrants, straight lines, duplicates and
/// core-local (zero-length) communications on meshes up to 8×8.
fn any_instance() -> impl Strategy<Value = CommSet> {
    (1usize..=8, 1usize..=8)
        .prop_flat_map(|(p, q)| {
            let comms = prop::collection::vec(((0..p, 0..q), (0..p, 0..q), 1u32..=3500), 1..=24);
            (Just((p, q)), comms)
        })
        .prop_map(|((p, q), comms)| {
            CommSet::new(
                Mesh::new(p, q),
                comms
                    .into_iter()
                    .map(|((a, b), (c, d), w)| {
                        Comm::new(Coord::new(a, b), Coord::new(c, d), w as f64)
                    })
                    .collect(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cached_tables_never_change_results(cs in any_instance()) {
        let cached = route_all(&cs, CACHED);
        let rebuilt = route_all(&cs, REBUILD);
        prop_assert_eq!(cached.0, rebuilt.0);
        prop_assert_eq!(cached.1, rebuilt.1);
    }
}

#[test]
fn session_state_is_bit_identical_across_implementations() {
    // The resident session consults the precompute for band links on every
    // add/remove; the cached band is the literal `Comm::band`, so a whole
    // mutation script must leave byte-identical state either way.
    let run = |engine: EngineConfig| {
        let mesh = Mesh::new(6, 6);
        let model = PowerModel::kim_horowitz();
        let mut s = pamr::routing::RoutingSession::new(
            mesh,
            model,
            pamr::routing::SessionConfig {
                engine,
                ..Default::default()
            },
        );
        let mut slots = Vec::new();
        for (i, j) in [(0, 35), (3, 17), (35, 0), (17, 3), (5, 30), (30, 5)] {
            let src = Coord::new(i / 6, i % 6);
            let snk = Coord::new(j / 6, j % 6);
            slots.push(s.add_comm(Comm::new(src, snk, 100.0 + i as f64)));
        }
        s.remove_comm(slots[1]);
        s.remove_comm(slots[4]);
        s.add_comm(Comm::new(Coord::new(0, 0), Coord::new(5, 5), 777.0));
        let (cs, routing) = s.live_routing();
        let lm = routing.loads(&cs);
        let loads: Vec<u64> = cs.mesh().links().map(|l| lm.get(l).to_bits()).collect();
        (routing, loads, s.stats())
    };
    assert_eq!(
        run(CACHED),
        run(REBUILD),
        "session state diverged between cached and rebuilt bands"
    );
}

#[test]
fn campaign_summary_is_byte_identical_across_implementations() {
    // The §6.4 acceptance contract: a seeded campaign rendered with the
    // shared precompute and with literal per-trial rebuilds must print the
    // same bytes.
    let mesh = pamr::sim::paper_mesh();
    let model = pamr::sim::paper_model();
    let (trials, seed) = (1, 0xD1FF);
    let cached =
        pamr::sim::summary::Summary::run_with(&mesh, &model, trials, seed, CACHED).render_report();
    let rebuilt =
        pamr::sim::summary::Summary::run_with(&mesh, &model, trials, seed, REBUILD).render_report();
    assert!(!cached.is_empty());
    assert_eq!(
        cached, rebuilt,
        "campaign summary diverged between precompute implementations"
    );
}
