//! Integration test: the system-level artefacts around a routing — compiled
//! forwarding tables and wormhole-deadlock analysis — through the facade.

use pamr::nocsim::{channel_dependency_graph, escape_channels_needed, has_cycle};
use pamr::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn tables_compile_and_verify_for_the_whole_portfolio() {
    let mesh = Mesh::new(8, 8);
    let model = PowerModel::kim_horowitz();
    let gen = UniformWorkload::new(25, 100.0, 2000.0);
    let mut rng = SmallRng::seed_from_u64(99);
    let cs = gen.generate(&mesh, &mut rng);
    for kind in HeuristicKind::ALL {
        let routing = kind.route(&cs, &model);
        let tables = RoutingTables::compile(&cs, &routing).expect("compiles");
        assert!(tables.verify(&cs, &routing), "{kind} tables diverge");
        // Table footprint sanity: entries = Σ hops over flows.
        let hops: usize = (0..cs.len())
            .flat_map(|i| routing.flows(i).iter().map(|(p, _)| p.len()))
            .sum();
        assert_eq!(tables.total_entries(), hops);
    }
}

#[test]
fn split_routing_tables_track_multiple_paths_per_comm() {
    let mesh = Mesh::new(6, 6);
    let model = PowerModel::kim_horowitz();
    let cs = CommSet::new(
        mesh,
        vec![
            Comm::new(Coord::new(0, 0), Coord::new(5, 5), 3000.0),
            Comm::new(Coord::new(5, 0), Coord::new(0, 5), 2500.0),
        ],
    );
    let r = SplitMp::new(PathRemover, 3).route(&cs, &model);
    let tables = RoutingTables::compile(&cs, &r).unwrap();
    assert!(tables.verify(&cs, &r));
    // Each path of a split communication has its own flow id.
    for i in 0..cs.len() {
        for pi in 0..r.flows(i).len() {
            let f = FlowId { comm: i, path: pi };
            let walked = tables.walk(r.flows(i)[pi].0.src(), f);
            assert_eq!(walked.snk(), cs.comms()[i].snk);
        }
    }
}

#[test]
fn xy_needs_no_escape_channels_but_manhattan_may() {
    let mesh = Mesh::new(8, 8);
    let model = PowerModel::kim_horowitz();
    let gen = UniformWorkload::new(40, 100.0, 1200.0);
    let mut xy_cycles = 0;
    let mut manhattan_cycles = 0;
    for seed in 0..10u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cs = gen.generate(&mesh, &mut rng);
        if escape_channels_needed(&cs, &xy_routing(&cs)) {
            xy_cycles += 1;
        }
        let pr = PathRemover.route(&cs, &model);
        if escape_channels_needed(&cs, &pr) {
            manhattan_cycles += 1;
        }
        // The CDG itself is well-formed either way.
        let g = channel_dependency_graph(&cs, &pr);
        assert!(g.num_edges() > 0);
        let _ = has_cycle(&g);
    }
    assert_eq!(xy_cycles, 0, "XY is dimension-ordered: never cyclic");
    assert!(
        manhattan_cycles > 0,
        "free Manhattan routing should occasionally need the escape mechanism the paper assumes"
    );
}
