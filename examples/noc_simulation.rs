//! Executes routings on the packet-level NoC simulator: the flow-level
//! power model says a routing is feasible/infeasible — the simulator shows
//! what that *means* (bounded queues and low latency vs unbounded backlog).
//!
//! Run with: `cargo run --release --example noc_simulation`

use pamr::nocsim::{simulate, SimConfig};
use pamr::prelude::*;

fn main() {
    let mesh = Mesh::new(8, 8);
    let model = PowerModel::kim_horowitz();

    // A hotspot pattern: eight producers stream into one consumer tile,
    // plus two heavy flows crossing from the same source tile; XY stacks
    // them, Manhattan routing spreads them.
    let cs = CommSet::new(
        mesh,
        vec![
            Comm::new(Coord::new(0, 0), Coord::new(4, 4), 2000.0),
            Comm::new(Coord::new(0, 0), Coord::new(4, 4), 2000.0),
            Comm::new(Coord::new(1, 2), Coord::new(4, 4), 800.0),
            Comm::new(Coord::new(7, 7), Coord::new(4, 4), 800.0),
            Comm::new(Coord::new(6, 1), Coord::new(4, 4), 800.0),
            Comm::new(Coord::new(2, 6), Coord::new(4, 4), 800.0),
        ],
    );
    let cfg = SimConfig {
        horizon_us: 200.0,
        packet_bits: 512.0,
    };

    println!(
        "packet-level execution of 6 flows on an 8×8 NoC ({} µs horizon)\n",
        cfg.horizon_us
    );
    println!(
        "{:<6} {:>9} {:>13} {:>13} {:>12} {:>9}",
        "policy", "feasible", "mean lat µs", "backlog µs", "energy µJ", "clamped"
    );
    for kind in [HeuristicKind::Xy, HeuristicKind::Xyi, HeuristicKind::Pr] {
        let routing = kind.route(&cs, &model);
        let feasible = routing.is_feasible(&cs, &model);
        let rep = simulate(&cs, &routing, &model, &cfg);
        println!(
            "{:<6} {:>9} {:>13.2} {:>13.2} {:>12.2} {:>9}",
            kind.name(),
            feasible,
            rep.mean_latency_us(),
            rep.max_backlog_us,
            rep.energy_nj / 1000.0,
            rep.clamped
        );
    }

    println!(
        "\nThe flow-level verdict (feasible / infeasible) matches the packet-level\n\
         behaviour: infeasible routings are clamped at the top frequency and build\n\
         unbounded backlog; feasible Manhattan routings sustain the same demand\n\
         with bounded queues."
    );
}
