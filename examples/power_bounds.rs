//! Situating the heuristics in absolute terms — the paper's future-work
//! item: "establish a bound on the optimal solution for single-path
//! Manhattan routings (or even compute the optimal solution for small
//! problem instances)".
//!
//! On small random instances this example computes, per instance:
//! the exact optimal 1-MP power (branch-and-bound), the Frank–Wolfe
//! multi-path lower bound, the diagonal-aggregation lower bound of the
//! Theorem 2 proof, and the heuristics' powers.
//!
//! Run with: `cargo run --release --example power_bounds`

use pamr::prelude::*;
use pamr::routing::{ideal_power_lower_bound, optimal_single_path};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mesh = Mesh::new(4, 4);
    // Continuous theory model so every bound is comparable (leakage off).
    let model = PowerModel::continuous(0.0, 1.0, 3.0, f64::INFINITY);
    let gen = UniformWorkload::new(5, 1.0, 4.0);

    println!("5 random communications on a 4×4 mesh, α = 3, continuous frequencies\n");
    println!(
        "{:>4} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "inst", "diag LB", "FW LB", "multi-MP", "opt 1-MP", "BEST", "XY"
    );
    for inst in 0..8u64 {
        let mut rng = SmallRng::seed_from_u64(inst);
        let cs = gen.generate(&mesh, &mut rng);
        let diag_lb = ideal_power_lower_bound(&cs, &model);
        let fw = frank_wolfe(&cs, &model, 300);
        let (_, opt) = optimal_single_path(&cs, &model, 1 << 24)
            .expect("node budget is ample for 5 comms on 4×4")
            .expect("unbounded capacity is always feasible");
        let best = Best::default()
            .route(&cs, &model)
            .power
            .expect("unbounded capacity is always feasible");
        let xy = xy_routing(&cs).power(&cs, &model).unwrap().total();
        println!(
            "{inst:>4} {diag_lb:>10.2} {:>10.2} {:>10.2} {opt:>10.2} {best:>10.2} {xy:>10.2}",
            fw.lower_bound, fw.dynamic_power
        );
        // The chain of inequalities the theory promises:
        assert!(diag_lb <= opt + 1e-6);
        assert!(fw.lower_bound <= fw.dynamic_power + 1e-6);
        assert!(
            fw.dynamic_power <= opt + 1e-6,
            "multi-path beats single-path"
        );
        assert!(opt <= best + 1e-6, "exact optimum bounds every heuristic");
        assert!(best <= xy + 1e-6, "BEST includes XY");
    }
    println!(
        "\nevery instance satisfies  diag-LB ≤ opt-1MP,  FW-LB ≤ multi-MP ≤ opt-1MP ≤ BEST ≤ XY"
    );
}
