//! Visualising what the heuristics actually do: ASCII load maps of the
//! same instance routed XY versus PR.
//!
//! Run with: `cargo run --release --example load_heatmap`

use pamr::prelude::*;
use pamr::sim::viz::{render_heatmap, render_loads};

fn main() {
    let mesh = Mesh::new(6, 6);
    let model = PowerModel::kim_horowitz();
    // Crossing traffic that XY concentrates on a few row/column segments.
    let cs = CommSet::new(
        mesh,
        vec![
            Comm::new(Coord::new(0, 0), Coord::new(5, 5), 1500.0),
            Comm::new(Coord::new(0, 0), Coord::new(5, 5), 1500.0),
            Comm::new(Coord::new(0, 5), Coord::new(5, 0), 1200.0),
            Comm::new(Coord::new(2, 0), Coord::new(3, 5), 900.0),
            Comm::new(Coord::new(0, 2), Coord::new(5, 3), 900.0),
        ],
    );

    for kind in [HeuristicKind::Xy, HeuristicKind::Pr] {
        let routing = kind.route(&cs, &model);
        let loads = routing.loads(&cs);
        let power = routing
            .power(&cs, &model)
            .map(|p| format!("{:.0} mW", p.total()))
            .unwrap_or_else(|_| "INFEASIBLE".into());
        println!(
            "── {} routing — {power} (max link load {:.0} Mb/s)",
            kind.name(),
            loads.max_load()
        );
        println!("{}", render_loads(&mesh, &loads));
        println!("utilisation heatmap (capacity 3500 Mb/s):");
        println!("{}", render_heatmap(&mesh, &loads, model.capacity));
    }
    println!("legend: ' .:-=+*#%@' — idle → saturated; PR spreads the same demand\nover more links at lower per-link frequency, which the convex power curve rewards.");
}
