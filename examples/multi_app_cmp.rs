//! The paper's motivating system-level scenario (§1): several applications,
//! each described as a task graph and already mapped onto cores of the CMP,
//! generate a set of inter-core communications that the system must route.
//!
//! We co-locate an FFT (butterfly), a 4-stage video pipeline and a stencil
//! kernel on one 8×8 CMP, then compare the XY baseline against the
//! Manhattan heuristics.
//!
//! Run with: `cargo run --release --example multi_app_cmp`

use pamr::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mesh = Mesh::new(8, 8);
    let model = PowerModel::kim_horowitz();
    let mut rng = SmallRng::seed_from_u64(2024);

    // Application 1: a 16-point FFT on the top-left 4×4 quadrant.
    let fft = TaskGraph::butterfly(4, 450.0);
    let fft_map = Mapping::explicit((0..16).map(|i| Coord::new(i / 4, i % 4)).collect());

    // Application 2: a video pipeline snaking down the right columns.
    let pipeline = TaskGraph::pipeline(8, 1900.0);
    let pipe_map = Mapping::explicit(
        (0..8)
            .map(|i| Coord::new(i, if i % 2 == 0 { 6 } else { 7 }))
            .collect(),
    );

    // Application 3: a 4×4 stencil kernel on the bottom-left quadrant,
    // randomly placed within it to model fragmented allocation.
    let stencil = TaskGraph::stencil(4, 4, 650.0);
    let stencil_map = {
        use rand::seq::SliceRandom;
        let mut cells: Vec<Coord> = (4..8)
            .flat_map(|u| (0..4).map(move |v| Coord::new(u, v)))
            .collect();
        cells.shuffle(&mut rng);
        Mapping::explicit(cells)
    };

    let cs = pamr::workload::taskgraph::merge_applications(
        &mesh,
        &[
            (&fft, &fft_map),
            (&pipeline, &pipe_map),
            (&stencil, &stencil_map),
        ],
    );
    println!(
        "system instance: {} communications, total demand {:.0} Mb/s, mean length {:.2}\n",
        cs.len(),
        cs.total_weight(),
        cs.mean_length()
    );

    println!(
        "{:<6} {:>10} {:>9} {:>10}",
        "policy", "power mW", "links", "max load"
    );
    let mut xy_power = None;
    for kind in HeuristicKind::ALL {
        let routing = kind.route(&cs, &model);
        let loads = routing.loads(&cs);
        match routing.power(&cs, &model) {
            Ok(p) => {
                if kind == HeuristicKind::Xy {
                    xy_power = Some(p.total());
                }
                println!(
                    "{:<6} {:>10.1} {:>9} {:>10.0}",
                    kind.name(),
                    p.total(),
                    p.active_links,
                    loads.max_load()
                );
            }
            Err(_) => println!(
                "{:<6} {:>10} {:>9} {:>10.0}",
                kind.name(),
                "FAILED",
                "-",
                loads.max_load()
            ),
        }
    }

    let routed = Best::default().route(&cs, &model);
    if let Some(best) = routed.power {
        println!("\nBEST = {} at {best:.1} mW", routed.kind);
        if let Some(xy) = xy_power {
            println!("power saved vs XY: {:.1}%", 100.0 * (1.0 - best / xy));
        } else {
            println!("XY routing failed outright on this instance — Manhattan routing found a solution where XY could not");
        }
    } else {
        println!("\nno policy found a feasible routing — the instance over-subscribes the CMP");
    }
}
