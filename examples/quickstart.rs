//! Quickstart: define a CMP, a set of communications, route them with every
//! policy and compare powers.
//!
//! Run with: `cargo run --release --example quickstart`

use pamr::prelude::*;

fn main() {
    // The paper's platform: an 8×8 mesh CMP with the Kim–Horowitz link
    // model (frequencies 1 / 2.5 / 3.5 Gb/s, P_leak = 16.9 mW, α = 2.95).
    let mesh = Mesh::new(8, 8);
    let model = PowerModel::kim_horowitz();

    // A handful of communications (weights in Mb/s), as would result from
    // a few applications already mapped onto the cores.
    let cs = CommSet::new(
        mesh,
        vec![
            Comm::new(Coord::new(0, 0), Coord::new(5, 6), 1800.0),
            Comm::new(Coord::new(0, 0), Coord::new(5, 6), 1400.0),
            Comm::new(Coord::new(7, 0), Coord::new(0, 7), 900.0),
            Comm::new(Coord::new(3, 2), Coord::new(3, 7), 2600.0),
            Comm::new(Coord::new(6, 5), Coord::new(1, 1), 700.0),
            Comm::new(Coord::new(2, 7), Coord::new(6, 0), 1100.0),
        ],
    );

    println!("routing {} communications on an 8×8 CMP\n", cs.len());
    println!(
        "{:<6} {:>10} {:>9} {:>13} {:>12}",
        "policy", "power mW", "links", "static frac", "max load"
    );
    for kind in HeuristicKind::ALL {
        let routing = kind.route(&cs, &model);
        let loads = routing.loads(&cs);
        match routing.power(&cs, &model) {
            Ok(p) => println!(
                "{:<6} {:>10.1} {:>9} {:>13.3} {:>12.0}",
                kind.name(),
                p.total(),
                p.active_links,
                p.static_fraction(),
                loads.max_load()
            ),
            Err(_) => println!(
                "{:<6} {:>10} {:>9} {:>13} {:>12.0}",
                kind.name(),
                "FAILED",
                "-",
                "-",
                loads.max_load()
            ),
        }
    }

    let best = Best::default().route(&cs, &model);
    let power = best
        .power
        .expect("at least one policy must succeed on this instance");
    println!("\nBEST = {} at {power:.1} mW", best.kind);

    // How much more could multi-path routing save? (continuous-frequency
    // lower bound via Frank–Wolfe)
    let cont = PowerModel::kim_horowitz_continuous();
    let fw = frank_wolfe(&cs, &cont, 200);
    println!(
        "multi-path dynamic-power lower bound (continuous frequencies): {:.1} mW",
        fw.lower_bound
    );
}
